//! One generator per paper experiment. Every function returns the rendered
//! table; the `repro` binary prints them and EXPERIMENTS.md records them.

use crate::table::{f2, pct, render};
use zipserv_bf16::gen::{survey_histograms, ModelFamily, WeightGen};
use zipserv_bf16::stats::{contiguity_survey, ExponentHistogram, ExponentSummary};
use zipserv_bf16::theory::ExponentDistribution;
use zipserv_core::codeword::{analyze_distribution, best_choice};
use zipserv_core::TbeCompressor;
use zipserv_gpu_sim::device::Gpu;
use zipserv_gpu_sim::roofline::{figure5_series, GemmShape};
use zipserv_kernels::cublas_model::CublasTc;
use zipserv_kernels::decoupled::{BaselineCodec, DecoupledPipeline};
use zipserv_kernels::fused::{typical_stats, FusedZipGemm};
use zipserv_kernels::marlin_model::MarlinW8A16;
use zipserv_kernels::shapes::{LayerKind, LlmModel};
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::workload::Workload;

/// The paper's average compression ratio (§3.1).
pub const PAPER_CR: f64 = 1.51;

fn gateup(model: LlmModel, n: u64) -> GemmShape {
    LayerKind::GateUpProj.gemm_shape(model, n)
}

/// Figure 1: execution time of lossless pipelines on the L40S, GateUp
/// layers — decompression alone takes 1.56–3.44× the GEMM.
pub fn fig01() -> String {
    let spec = Gpu::L40s.spec();
    let mut rows = Vec::new();
    for model in [
        LlmModel::Llama31_8b,
        LlmModel::Mistral24b,
        LlmModel::Qwen25_32b,
    ] {
        for n in [8u64, 16, 32] {
            let shape = gateup(model, n);
            let gemm = CublasTc::time(shape, &spec).total_us;
            let mut row = vec![model.name().to_string(), n.to_string(), f2(gemm / 1e3)];
            for codec in BaselineCodec::ALL {
                let d = DecoupledPipeline::new(codec)
                    .decomp_time(shape.m, shape.k, &spec)
                    .total_us;
                row.push(format!("{} ({:.2}x)", f2(d / 1e3), d / gemm));
            }
            rows.push(row);
        }
    }
    format!(
        "Figure 1 — decoupled decompression vs GEMM time, L40S GateUp (ms):\n{}",
        render(
            &["model", "batch", "GEMM", "DietGPU", "nvCOMP", "DFloat11"],
            &rows
        )
    )
}

/// Figure 2: exponent distributions of LLM weights (synthetic Gaussian
/// matching §3.1's reported statistics).
pub fn fig02() -> String {
    let mut rows = Vec::new();
    for family in ModelFamily::ALL {
        let weights = WeightGen::for_family(family).seed(2024).vector(400_000);
        let hist = ExponentHistogram::from_values(weights);
        let s = ExponentSummary::from_histogram(&hist);
        rows.push(vec![
            family.name().to_string(),
            f2(s.entropy_bits),
            pct(s.top3_coverage),
            pct(s.top7_coverage),
            pct(s.window7_coverage),
            s.top7_contiguous.to_string(),
            f2(s.theoretical_ratio),
        ]);
    }
    format!(
        "Figure 2 — BF16 exponent statistics (paper: entropy 2.57-2.74 bits, top-3 > 67%, top-7 > 95%):\n{}",
        render(
            &["family", "entropy(b)", "top-3", "top-7", "window-7", "contiguous", "theor. ratio"],
            &rows
        )
    )
}

/// §3.1 contiguity survey: top-7 contiguity across many matrices
/// (paper: 99.6% contiguous, 97.1% mean window coverage on 3,875 matrices).
pub fn contiguity() -> String {
    let hists = survey_histograms(&ModelFamily::ALL, 24, 50_000, 7);
    let s = contiguity_survey(hists.iter());
    format!(
        "Contiguity survey (paper: 99.6% contiguous, 97.1% coverage):\n\
         matrices surveyed : {}\n\
         top-7 contiguous  : {}\n\
         mean win-7 cover  : {}\n",
        s.matrices,
        pct(s.contiguous_fraction),
        pct(s.mean_window_coverage)
    )
}

/// Figure 5: roofline compute-intensity analysis (Eqs. 1–3).
pub fn fig05() -> String {
    let pts = figure5_series(&[8, 16, 32, 64], PAPER_CR);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                f2(p.ci_dense),
                f2(p.ci_decoupled),
                f2(p.ci_fused),
                pct(p.decoupled_degradation()),
                pct(p.fused_improvement()),
            ]
        })
        .collect();
    format!(
        "Figure 5 — compute intensity, M=K=4096, CR={PAPER_CR} \
         (paper: decoupled -62%, fused +50%):\n{}",
        render(
            &[
                "N",
                "CI dense",
                "CI decoupled",
                "CI fused",
                "degradation",
                "improvement"
            ],
            &rows
        )
    )
}

/// §4.2 codeword-length table (paper: 12.4 / 11.3 / 12.1 bits for 2/3/4-bit).
pub fn codeword() -> String {
    let dist = ExponentDistribution::new(0.018);
    let choices = analyze_distribution(&dist, 5);
    let rows: Vec<Vec<String>> = choices
        .iter()
        .map(|c| {
            vec![
                c.n.to_string(),
                c.window.to_string(),
                pct(c.coverage),
                f2(c.avg_bits),
            ]
        })
        .collect();
    format!(
        "Codeword-length analysis (paper: 3-bit optimal at 11.3 bits; floor 10.6):\n{}best: {}-bit\n",
        render(&["bits", "window", "coverage", "avg bits/elem"], &rows),
        best_choice(&choices).n
    )
}

/// Figure 11: kernel speedups over cuBLAS_TC across models, layers and
/// batch sizes on the RTX4090 and L40S.
pub fn fig11() -> String {
    let mut out = String::new();
    for gpu in [Gpu::Rtx4090, Gpu::L40s] {
        let spec = gpu.spec();
        let mut rows = Vec::new();
        let mut all_zip = Vec::new();
        for model in LlmModel::ALL {
            let mut per_model: Vec<f64> = Vec::new();
            let mut base: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for layer in LayerKind::BLOCK {
                for n in [8u64, 16, 32] {
                    let shape = layer.gemm_shape(model, n);
                    let dense = CublasTc::time(shape, &spec).total_us;
                    let fused =
                        FusedZipGemm::time(&typical_stats(shape.m, shape.k), n, &spec).total_us;
                    per_model.push(dense / fused);
                    for (i, codec) in BaselineCodec::ALL.iter().enumerate() {
                        let t = DecoupledPipeline::new(*codec).time(shape, &spec);
                        base[i].push(dense / t.total_us());
                    }
                }
            }
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            all_zip.extend_from_slice(&per_model);
            rows.push(vec![
                model.name().to_string(),
                f2(avg(&per_model)),
                f2(avg(&base[0])),
                f2(avg(&base[1])),
                f2(avg(&base[2])),
            ]);
        }
        let avg = all_zip.iter().sum::<f64>() / all_zip.len() as f64;
        let peak = all_zip.iter().cloned().fold(0.0, f64::max);
        out.push_str(&format!(
            "Figure 11 — speedup over cuBLAS_TC on {} (paper avg 1.31x/1.36x, peak 1.71x/2.21x):\n{}\
             ZipGEMM average {:.2}x, peak {:.2}x\n\n",
            gpu.name(),
            render(
                &["model", "ZipGEMM", "DietGPU", "nvCOMP", "DFloat11"],
                &rows
            ),
            avg,
            peak
        ));
    }
    // Figure 11(c): layer-wise on L40S, LLaMA family.
    let spec = Gpu::L40s.spec();
    let mut rows = Vec::new();
    for layer in LayerKind::BLOCK {
        let mut row = vec![layer.name().to_string()];
        for model in [
            LlmModel::Llama31_8b,
            LlmModel::Llama31_70b,
            LlmModel::Llama31_405b,
        ] {
            let shape = layer.gemm_shape(model, 32);
            let dense = CublasTc::time(shape, &spec).total_us;
            let fused = FusedZipGemm::time(&typical_stats(shape.m, shape.k), 32, &spec).total_us;
            row.push(f2(dense / fused));
        }
        rows.push(row);
    }
    out.push_str(&format!(
        "Figure 11(c) — layer-wise ZipGEMM speedup, L40S, batch 32 \
         (paper: GateUp 1.39x, Down 1.64x avg; O_proj 0.79x on 8B):\n{}",
        render(&["layer", "8B", "70B", "405B"], &rows)
    ));
    out
}

/// Figure 12: micro-level analysis of ZipGEMM on the RTX4090
/// (M=28672, K=4096, N=32).
pub fn fig12() -> String {
    let spec = Gpu::Rtx4090.spec();
    let shape = GemmShape::new(28672, 4096, 32);
    let stats = typical_stats(28672, 4096);
    let fused_profile = FusedZipGemm::kernel_profile(&stats, 32, &spec);
    let dense_profile = CublasTc::kernel_profile(shape, &spec);
    let fused = fused_profile.execute(&spec);
    let dense = dense_profile.execute(&spec);
    let dietgpu = BaselineCodec::DietGpu.decomp_profile(28672, 4096, 2.65);

    let dram_drop =
        1.0 - fused_profile.dram.read_bytes as f64 / dense_profile.dram.read_bytes as f64;
    // ALU duty: fraction of the kernel the integer pipes are busy decoding
    // (the paper's NCU run reports 66% ALU utilization with TC utilization
    // held at 71.6% of cuBLAS; our pipeline model hides the decode fully,
    // so we report the duty cycle plus the relative mma issue rate).
    let alu_duty = fused.alu_us / fused.total_us;
    let mma_rate = dense.total_us / fused.total_us;
    use zipserv_gpu_sim::instr::InstrKind;
    format!(
        "Figure 12 — ZipGEMM micro analysis, RTX4090, 28672x4096 @ N=32:\n\
         (a) decode instruction workload: LOP3 {:.1}M, IADD {:.1}M, POPC {:.1}M, SHIFT {:.1}M\n\
         (b) DRAM read reduction vs cuBLAS: {} (paper: 29.3%)\n\
             decode ALU duty cycle: {} (paper: ALU utilization 66.0%, hidden by the pipeline)\n\
             relative mma issue rate vs cuBLAS: {:.2}x (paper: TC utilization 71.6% of cuBLAS,\n\
             yet faster end-to-end because the kernel moves 29% fewer bytes)\n\
         (c) shared-memory bank conflicts: ZipGEMM ~{:.1}K vs DietGPU {:.1}M (paper: ~4.7K vs millions)\n",
        fused_profile.alu.count(InstrKind::Lop3) as f64 / 1e6,
        fused_profile.alu.count(InstrKind::Iadd) as f64 / 1e6,
        fused_profile.alu.count(InstrKind::Popc) as f64 / 1e6,
        fused_profile.alu.count(InstrKind::Shift) as f64 / 1e6,
        pct(dram_drop),
        pct(alu_duty),
        mma_rate,
        fused_profile.smem.conflict_count() / 1e3,
        dietgpu.smem.conflict_count() / 1e6,
    )
}

/// Figure 13: standalone decompression of a full transformer block's
/// weights (paper: ZipServ-Decomp 2.14×/1.83×/1.10× over
/// DietGPU/nvCOMP/DFloat11).
pub fn fig13() -> String {
    let mut rows = Vec::new();
    for gpu in [Gpu::Rtx4090, Gpu::L40s] {
        let spec = gpu.spec();
        for model in [LlmModel::Llama31_8b, LlmModel::Mistral24b] {
            let dims = model.dims();
            let mut zip_us = 0.0;
            let mut base_us = [0.0f64; 3];
            for layer in LayerKind::BLOCK {
                let (m, k) = layer.weight_dims(&dims);
                zip_us += FusedZipGemm::decomp_profile(&typical_stats(m, k))
                    .execute(&spec)
                    .total_us;
                for (i, codec) in BaselineCodec::ALL.iter().enumerate() {
                    base_us[i] += codec.decomp_profile(m, k, 2.65).execute(&spec).total_us;
                }
            }
            rows.push(vec![
                gpu.name().to_string(),
                model.name().to_string(),
                f2(zip_us / 1e3),
                format!("{} ({:.2}x)", f2(base_us[0] / 1e3), base_us[0] / zip_us),
                format!("{} ({:.2}x)", f2(base_us[1] / 1e3), base_us[1] / zip_us),
                format!("{} ({:.2}x)", f2(base_us[2] / 1e3), base_us[2] / zip_us),
            ]);
        }
    }
    format!(
        "Figure 13 — full-block decompression time (ms) and ZipServ-Decomp speedup \
         (paper: 2.14x DietGPU, 1.83x nvCOMP, 1.10x DFloat11):\n{}",
        render(
            &["GPU", "model", "ZipServ", "DietGPU", "nvCOMP", "DFloat11"],
            &rows
        )
    )
}

/// Figure 14: cross-generation and cross-tier comparison (RTX5090 vs
/// A100/H800), GateUp layers at batch 32.
pub fn fig14() -> String {
    let mut rows = Vec::new();
    for model in [LlmModel::Llama31_8b, LlmModel::Mistral24b] {
        let shape = gateup(model, 32);
        for gpu in [Gpu::Rtx4090, Gpu::Rtx5090, Gpu::A100, Gpu::H800] {
            let spec = gpu.spec();
            let dense = CublasTc::time(shape, &spec).total_us;
            let fused = FusedZipGemm::time(&typical_stats(shape.m, shape.k), 32, &spec).total_us;
            rows.push(vec![
                model.name().to_string(),
                gpu.name().to_string(),
                f2(dense / 1e3),
                f2(fused / 1e3),
                f2(dense / fused),
            ]);
        }
    }
    let shape = gateup(LlmModel::Llama31_8b, 32);
    let h800 = CublasTc::time(shape, &Gpu::H800.spec()).total_us;
    let d5090 = CublasTc::time(shape, &Gpu::Rtx5090.spec()).total_us;
    let z5090 =
        FusedZipGemm::time(&typical_stats(shape.m, shape.k), 32, &Gpu::Rtx5090.spec()).total_us;
    format!(
        "Figure 14 — cross-generation comparison, GateUp @ batch 32 (ms) \
         (paper: 5090 speedups 1.34x/1.87x; 4090+ZipGEMM ~ A100 cuBLAS):\n{}\
         RTX5090 deficit vs H800: dense {} -> fused {} (paper: 53.3% -> 14.1%)\n",
        render(&["model", "GPU", "cuBLAS", "ZipGEMM", "speedup"], &rows),
        pct(d5090 / h800 - 1.0),
        pct(z5090 / h800 - 1.0),
    )
}

/// Figure 15: performance under different `N` — fused wins in decode,
/// decoupled prefill overhead ~4%/2% at N = 8192/16384.
pub fn fig15() -> String {
    let spec = Gpu::Rtx4090.spec();
    let stats = typical_stats(28672, 4096);
    let mut rows = Vec::new();
    for n in [1u64, 8, 32, 128, 512, 2048, 8192, 16384] {
        let shape = GemmShape::new(28672, 4096, n);
        let dense = CublasTc::time(shape, &spec).total_us;
        let fused = FusedZipGemm::time(&stats, n, &spec).total_us;
        let decomp = FusedZipGemm::decomp_profile(&stats).execute(&spec).total_us;
        let decoupled_overhead = decomp / dense;
        rows.push(vec![
            n.to_string(),
            f2(dense / 1e3),
            f2(fused / 1e3),
            f2(dense / fused),
            pct(decoupled_overhead),
        ]);
    }
    format!(
        "Figure 15 — N sweep, 28672x4096, RTX4090 \
         (paper: fused wins for N<=128; decoupled overhead ~4%/2% at 8192/16384):\n{}",
        render(
            &[
                "N",
                "cuBLAS ms",
                "ZipGEMM ms",
                "fused speedup",
                "decoupled ovh"
            ],
            &rows
        )
    )
}

/// §6.4 offline compression cost: measured Rust throughput extrapolated to
/// LLaMA3.1-8B (paper: ~2.5 min on 16 cores).
pub fn offline() -> String {
    let elems = 4_194_304usize; // 2048 x 2048 sample
    let w = WeightGen::new(0.018).seed(99).matrix(2048, 2048);
    let start = std::time::Instant::now();
    let tbe = TbeCompressor::new().compress(&w).expect("tileable");
    let secs = start.elapsed().as_secs_f64();
    let throughput = elems as f64 / secs / 1e6;
    let model_elems = LlmModel::Llama31_8b.dims().total_params() as f64;
    let projected_min = model_elems / (throughput * 1e6) / 60.0;
    format!(
        "Offline compression cost (§6.4, paper: ~2.5 min for LLaMA3.1-8B on 16 cores):\n\
         sample           : {} elements in {:.3} s ({:.1} Melem/s)\n\
         projected 8B     : {:.1} min\n\
         achieved ratio   : {:.3}x ({} of raw)\n",
        elems,
        secs,
        throughput,
        projected_min,
        tbe.compression_ratio(),
        pct(1.0 / tbe.compression_ratio()),
    )
}

/// The three §6.5 deployments.
pub fn deployments() -> Vec<(LlmModel, GpuCluster)> {
    vec![
        (LlmModel::Llama31_8b, GpuCluster::single(Gpu::Rtx4090)),
        (
            LlmModel::Mistral24b,
            GpuCluster::tensor_parallel(Gpu::L40s, 2),
        ),
        (
            LlmModel::Llama31_70b,
            GpuCluster::tensor_parallel(Gpu::L40s, 4),
        ),
    ]
}

/// Figure 16: end-to-end latency and throughput across engines.
pub fn fig16() -> String {
    let mut out = String::from(
        "Figure 16 — end-to-end serving (paper: ZipServ 1.22x vLLM, 3.18x Transformers, 8.52x DFloat11 throughput):\n",
    );
    let mut speedups = [Vec::new(), Vec::new(), Vec::new()];
    for (model, cluster) in deployments() {
        let mut rows = Vec::new();
        for w in Workload::paper_sweep() {
            let mut row = vec![format!("bs{}", w.batch), w.output_len.to_string()];
            let zip = ServingEngine::new(EngineKind::ZipServ, model, cluster).serve(w);
            for kind in EngineKind::ALL {
                let r = ServingEngine::new(kind, model, cluster).serve(w);
                row.push(format!("{:.1}s/{:.0}t/s", r.latency_s, r.throughput_tps));
                match kind {
                    EngineKind::Vllm => speedups[0].push(zip.throughput_tps / r.throughput_tps),
                    EngineKind::Transformers => {
                        speedups[1].push(zip.throughput_tps / r.throughput_tps)
                    }
                    EngineKind::DFloat11 => speedups[2].push(zip.throughput_tps / r.throughput_tps),
                    EngineKind::ZipServ => {}
                }
            }
            rows.push(row);
        }
        out.push_str(&format!(
            "\n{} on {}x{}:\n{}",
            model.name(),
            cluster.count,
            cluster.gpu.name(),
            render(
                &[
                    "batch",
                    "out",
                    "ZipServ",
                    "vLLM",
                    "Transformers",
                    "DFloat11"
                ],
                &rows
            )
        ));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    out.push_str(&format!(
        "\naverage throughput speedup: {:.2}x vs vLLM, {:.2}x vs Transformers, {:.2}x vs DFloat11\n",
        avg(&speedups[0]),
        avg(&speedups[1]),
        avg(&speedups[2])
    ));
    out
}

/// Figure 17: decode-step and memory breakdown for LLaMA3.1-8B on the
/// RTX4090.
pub fn fig17() -> String {
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let zip = ServingEngine::new(EngineKind::ZipServ, LlmModel::Llama31_8b, cluster);
    let vllm = ServingEngine::new(EngineKind::Vllm, LlmModel::Llama31_8b, cluster);
    let zs = zip.decode_step(32, 1024);
    let vs = vllm.decode_step(32, 1024);
    let gb = 1024.0 * 1024.0 * 1024.0;
    format!(
        "Figure 17 — LLaMA3.1-8B on RTX4090, batch 32, seq 1024:\n\
         step breakdown (ms)      vLLM      ZipServ   (paper: 24.99 -> 14.76 linear, 1.69x)\n\
           linear                 {:>7.2}   {:>7.2}   ({:.2}x)\n\
           attention              {:>7.2}   {:>7.2}\n\
           other                  {:>7.2}   {:>7.2}\n\
           total                  {:>7.2}   {:>7.2}\n\
         linear fraction (vLLM)  : {} (paper: 83.6%)\n\
         memory (GiB)             vLLM      ZipServ   (paper: weights 14.96 -> 11.18, KV 5.07 -> 8.60)\n\
           weights                {:>7.2}   {:>7.2}\n\
           KV cache               {:>7.2}   {:>7.2}   ({:.2}x, paper 1.70x)\n",
        vs.linear_ms,
        zs.linear_ms,
        vs.linear_ms / zs.linear_ms,
        vs.attention_ms,
        zs.attention_ms,
        vs.other_ms,
        zs.other_ms,
        vs.total_ms(),
        zs.total_ms(),
        pct(vs.linear_fraction()),
        vllm.memory_plan().weight_bytes as f64 / gb,
        zip.memory_plan().weight_bytes as f64 / gb,
        vllm.memory_plan().kv_bytes as f64 / gb,
        zip.memory_plan().kv_bytes as f64 / gb,
        zip.memory_plan().kv_bytes as f64 / vllm.memory_plan().kv_bytes as f64,
    )
}

/// Figure 18 / §7: training-oriented datacenter GPUs and the Marlin-W8A16
/// lossy comparison.
pub fn fig18() -> String {
    let mut rows = Vec::new();
    for gpu in [Gpu::A100, Gpu::H800] {
        let spec = gpu.spec();
        for model in [LlmModel::Llama31_8b, LlmModel::Mistral24b] {
            let shape = gateup(model, 32);
            let dense = CublasTc::time(shape, &spec).total_us;
            let fused = FusedZipGemm::time(&typical_stats(shape.m, shape.k), 32, &spec).total_us;
            let zip_decomp = FusedZipGemm::decomp_profile(&typical_stats(shape.m, shape.k))
                .execute(&spec)
                .total_us;
            let best_base = BaselineCodec::ALL
                .iter()
                .map(|c| {
                    c.decomp_profile(shape.m, shape.k, 2.65)
                        .execute(&spec)
                        .total_us
                })
                .fold(f64::INFINITY, f64::min);
            rows.push(vec![
                gpu.name().to_string(),
                model.name().to_string(),
                f2(dense / fused),
                f2(best_base / zip_decomp),
            ]);
        }
    }
    let spec = Gpu::Rtx4090.spec();
    let shape = GemmShape::new(28672, 4096, 32);
    let marlin = MarlinW8A16::time(shape, &spec).total_us;
    let fused = FusedZipGemm::time(&typical_stats(28672, 4096), 32, &spec).total_us;
    format!(
        "Figure 18 / §7 — datacenter GPUs (paper: ZipGEMM may trail cuBLAS; decomp still fastest):\n{}\
         Marlin-W8A16 vs ZipGEMM on RTX4090: {} ms vs {} ms, gap {:.2}x \
         (paper: 0.143 vs 0.194 ms, 1.36x ~ bit-width ratio)\n",
        render(
            &["GPU", "model", "ZipGEMM/cuBLAS", "decomp speedup vs best"],
            &rows
        ),
        f2(marlin / 1e3),
        f2(fused / 1e3),
        fused / marlin,
    )
}

/// §6.5 memory table: weight footprints before/after compression.
pub fn memory_table() -> String {
    let rows: Vec<Vec<String>> = [
        LlmModel::Llama31_8b,
        LlmModel::Mistral24b,
        LlmModel::Llama31_70b,
    ]
    .iter()
    .map(|&m| {
        let raw = m.dims().weight_bytes_bf16() as f64 / 1e9;
        let comp = raw * zipserv_serve::engine::ZIPSERV_WEIGHT_FRACTION;
        vec![m.name().to_string(), f2(raw), f2(comp), pct(comp / raw)]
    })
    .collect();
    format!(
        "Weight footprint (paper: 14.96/43.92/131.56 GB -> 72.4/71.3/71.1%):\n{}",
        render(&["model", "BF16 GB", "TCA-TBE GB", "fraction"], &rows)
    )
}

/// Ablation study: the two §4.2 design choices, made executable — triple
/// bit-plane bitmaps vs a packed 3-bit bitstream, and the implicit
/// base-plus-code lookup vs an explicit frequency-ranked codebook.
pub fn ablation() -> String {
    use zipserv_core::ablation::{compare_codebooks, compare_layouts};
    let mut rows = Vec::new();
    for gpu in [Gpu::Rtx4090, Gpu::L40s, Gpu::A100] {
        let spec = gpu.spec();
        let layout = compare_layouts(&spec);
        let weights = WeightGen::new(0.018).seed(2024).vector(200_000);
        let hist = ExponentHistogram::from_values(weights);
        let (gain, codebook) = compare_codebooks(&hist, &spec);
        rows.push(vec![
            gpu.name().to_string(),
            format!("{} -> {} ops", layout.reference_ops, layout.ablated_ops),
            format!("{:.2}x slower", layout.slowdown()),
            pct(gain),
            format!("{:.2}x slower", codebook.slowdown()),
        ]);
    }
    format!(
        "Ablation — TCA-TBE design choices (§4.2):\n{}\
         packed bitstream: more extraction work per element, no size benefit.\n\
         explicit codebook: zero coverage gain on contiguous (LLM-like) exponent\n\
         distributions (Theorem A.2), at a shared-memory LUT cost per element.\n",
        render(
            &[
                "GPU",
                "packed-bitstream ops",
                "packed decode",
                "LUT coverage gain",
                "LUT decode"
            ],
            &rows
        )
    )
}

/// Online continuous-batching comparison (the production-serving view of
/// Figure 16's KV-capacity mechanism).
pub fn online() -> String {
    use zipserv_serve::scheduler::{poisson_arrivals, ContinuousBatcher};
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let arrivals = poisson_arrivals(8.0, 80, 1024, 256, 17);
    let mut rows = Vec::new();
    for kind in [EngineKind::ZipServ, EngineKind::Vllm] {
        let engine = ServingEngine::new(kind, LlmModel::Llama31_8b, cluster);
        let report = ContinuousBatcher::new(&engine).run(arrivals.clone());
        rows.push(vec![
            kind.name().to_string(),
            f2(report.throughput_tps),
            f2(report.latency_percentile(0.5).expect("completions")),
            f2(report.latency_percentile(0.95).expect("completions")),
            f2(report.mean_queue_s().expect("completions")),
            report.peak_batch.to_string(),
        ]);
    }
    format!(
        "Online serving — continuous batching, Poisson arrivals (8 req/s, prompt 1024, output 256):\n{}",
        render(
            &["engine", "tok/s", "p50 lat (s)", "p95 lat (s)", "mean queue (s)", "peak batch"],
            &rows
        )
    )
}

/// Scheduling-policy comparison: the four `SchedulePolicy` implementations
/// racing on the paper's mixed-priority arrival trace (the `fig_sched`
/// criterion bench times the same race).
pub fn sched() -> String {
    use zipserv_serve::policy::{Fcfs, PreemptiveSjf, Priority, PriorityClass, SloEdf};
    use zipserv_serve::workload::ArrivalMix;
    let arrivals = ArrivalMix::paper_mix().generate(10.0, 120, 29);
    let policies: Vec<Box<dyn zipserv_serve::policy::SchedulePolicy>> = vec![
        Box::new(Fcfs),
        Box::new(Priority::default()),
        Box::new(SloEdf::default()),
        Box::new(PreemptiveSjf::default()),
    ];
    let mut rows = Vec::new();
    for policy in &policies {
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::single(Gpu::Rtx4090))
            .policy_box(policy.clone_box())
            .build();
        let report = engine.serve_online(arrivals.clone());
        let int_p99 = report
            .class_ttft_percentile(PriorityClass::Interactive, 0.99)
            .expect("interactive completions");
        rows.push(vec![
            report.policy.clone(),
            f2(report.throughput_tps),
            f2(int_p99),
            f2(report.ttft_percentile(0.99).expect("completions")),
            pct(report.slo_attainment().expect("SLO-carrying completions")),
            report.preemptions.to_string(),
        ]);
    }
    format!(
        "Scheduling policies — ZipServ/LLaMA3.1-8B/RTX4090, paper mix (10 req/s, 120 reqs):\n{}",
        render(
            &[
                "policy",
                "tok/s",
                "p99 TTFT int (s)",
                "p99 TTFT all (s)",
                "SLO att.",
                "preempts"
            ],
            &rows
        )
    )
}

/// Tensor/pipeline-parallel serving: the three §6.5 deployments plus a
/// two-node pipeline projection, with the communication cost (all-reduce,
/// stage hops) broken out of every per-step time — including the steps the
/// online scheduler actually charges (`ScheduleReport::comm_s`).
///
/// Prints a machine-readable `FIG_TP_SCALING` line consumed by the CI
/// smoke check (`smoke_check` bin), which gates on the *ratios* staying
/// within 25% of `BENCH_baseline.json` rather than absolute times.
pub fn tp_parallel() -> String {
    use zipserv_serve::scheduler::poisson_arrivals;
    let mut out = String::from(
        "Multi-GPU serving — §6.5 deployments + 2-node PP projection, ZipServ, batch 32 @ seq 1024:\n",
    );
    let deployments: Vec<(&str, LlmModel, GpuCluster)> = vec![
        (
            "1xRTX4090",
            LlmModel::Llama31_8b,
            GpuCluster::single(Gpu::Rtx4090),
        ),
        (
            "2xL40S (TP2)",
            LlmModel::Mistral24b,
            GpuCluster::tensor_parallel(Gpu::L40s, 2),
        ),
        (
            "4xL40S (TP4)",
            LlmModel::Llama31_70b,
            GpuCluster::tensor_parallel(Gpu::L40s, 4),
        ),
        (
            "2x(4xL40S) (TP4 PP2)",
            LlmModel::Llama31_70b,
            GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2),
        ),
    ];
    let mut rows = Vec::new();
    for (label, model, cluster) in &deployments {
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(*model)
            .cluster(*cluster)
            .build();
        let s = engine.decode_step(32, 1024);
        let report = engine.serve_online(poisson_arrivals(3.0, 24, 512, 64, 41));
        rows.push(vec![
            label.to_string(),
            model.name().to_string(),
            f2(s.linear_ms),
            f2(s.attention_ms),
            f2(s.allreduce_ms),
            f2(s.p2p_ms),
            f2(s.total_ms()),
            pct(s.comm_ms() / s.total_ms()),
            format!("{:.2}/{:.1}", report.comm_s, report.duration_s),
        ]);
    }
    out.push_str(&render(
        &[
            "deployment",
            "model",
            "linear",
            "attn",
            "allreduce",
            "p2p",
            "total ms",
            "comm",
            "sched comm/dur (s)",
        ],
        &rows,
    ));

    // TP scaling on a fixed model: LLaMA3.1-8B across 1/2/4 L40S.
    let base = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::L40s))
        .build();
    let t1 = base.decode_step(32, 1024).total_ms();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for tp in [1u32, 2, 4] {
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::tensor_parallel(Gpu::L40s, tp))
            .build();
        let s = engine.decode_step(32, 1024);
        let speedup = t1 / s.total_ms();
        ratios.push(speedup);
        rows.push(vec![
            format!("TP{tp}"),
            f2(s.total_ms()),
            f2(s.allreduce_ms),
            format!("{speedup:.2}x"),
            pct(speedup / tp as f64),
            format!("{}", engine.kv_capacity_tokens()),
        ]);
    }
    out.push_str(&format!(
        "\nTP scaling — LLaMA3.1-8B on 1/2/4 L40S (all-reduce caps the speedup below linear):\n{}",
        render(
            &[
                "degree",
                "step ms",
                "allreduce ms",
                "speedup",
                "efficiency",
                "KV tokens"
            ],
            &rows
        )
    ));
    out.push_str(&format!(
        "FIG_TP_SCALING tp2={:.4} tp4={:.4}\n",
        ratios[1], ratios[2]
    ));
    out
}

/// Fault injection and recovery: the same mixed-priority trace on the TP2
/// deployment, clean vs a mid-run rank failure (with and without repair),
/// a degraded-link window, and a seeded chaos plan — reporting goodput,
/// availability, retries and recompute work.
///
/// Prints a machine-readable `FIG_FAULT` line (faulted-vs-clean goodput
/// ratio and availability under the fail+repair scenario) consumed by the
/// CI smoke check; both numbers are deterministic model outputs, so the
/// gate is symmetric like `FIG_TP_SCALING`.
pub fn fault_recovery() -> String {
    use zipserv_serve::fault::{FaultPlan, RetryPolicy};
    use zipserv_serve::policy::Fcfs;
    use zipserv_serve::scheduler::run_policy_faulted;
    use zipserv_serve::workload::ArrivalMix;
    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::tensor_parallel(Gpu::L40s, 2))
        .build();
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 100, 37);
    let retry = RetryPolicy::default();
    let run =
        |plan: &FaultPlan| run_policy_faulted(&engine, &Fcfs, 64, arrivals.clone(), plan, &retry);
    let clean = run(&FaultPlan::default());
    let (fail_at, repair_at) = (0.3 * clean.duration_s, 0.6 * clean.duration_s);
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::default()),
        (
            "rank fail + repair",
            FaultPlan::new()
                .rank_fail(fail_at, 0)
                .rank_repair(repair_at, 0),
        ),
        (
            "rank fail, no repair",
            FaultPlan::new().rank_fail(fail_at, 0),
        ),
        (
            "link degrade 4x",
            FaultPlan::new().link_degrade(fail_at, 4.0, repair_at - fail_at),
        ),
        (
            "seeded chaos (7)",
            FaultPlan::seeded(7, clean.duration_s, 2),
        ),
    ];
    let mut rows = Vec::new();
    let mut recovered = None;
    for (label, plan) in &scenarios {
        let r = run(plan);
        rows.push(vec![
            label.to_string(),
            r.completions.len().to_string(),
            r.rejections.len().to_string(),
            f2(r.goodput_tps()),
            pct(r.availability()),
            r.robustness.retries.to_string(),
            r.robustness.recomputed_tokens.to_string(),
            r.robustness
                .mean_time_to_recover_s()
                .map_or("-".to_string(), f2),
            f2(r.duration_s),
        ]);
        if *label == "rank fail + repair" {
            recovered = Some(r);
        }
    }
    let recovered = recovered.expect("scenario list names the recovery run");
    format!(
        "Fault injection & recovery — ZipServ TP2 (2xL40S, LLaMA3.1-8B), paper mix (12 req/s, 100 reqs):\n{}\
         FIG_FAULT goodput_ratio={:.4} availability={:.4}\n",
        render(
            &[
                "scenario",
                "done",
                "rej",
                "goodput t/s",
                "avail",
                "retries",
                "recomp tok",
                "TTR (s)",
                "dur (s)",
            ],
            &rows
        ),
        recovered.goodput_tps() / clean.goodput_tps(),
        recovered.availability(),
    )
}

/// §7 extension: lossless KV-cache compression with per-page bases.
pub fn kv_compression() -> String {
    use zipserv_core::kv::{KvCompressionStats, KvPageCodec};
    let codec = KvPageCodec::new();
    let mut stats = KvCompressionStats::default();
    for seed in 0..32u64 {
        let drift = 0.2 + (seed % 8) as f64 * 0.4;
        let page = WeightGen::new(0.6 * drift).seed(seed).matrix(16, 256);
        let c = codec.compress(&page).expect("tileable");
        stats.push(&c);
    }
    format!(
        "KV-cache compression (§7 extension) — 32 pages of 16 tokens x 256 dims:\n\
         aggregate ratio      : {:.2}x\n\
         capacity multiplier  : {:.2}x on top of the weight savings\n\
         pages                : {}\n",
        stats.ratio(),
        stats.capacity_multiplier(),
        stats.pages
    )
}

/// Prefill pipelining study: serial decompress-then-GEMM (§4.4) vs
/// stream-overlapped double buffering, against the dense (vLLM) floor.
pub fn prefill_overlap() -> String {
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let zip = ServingEngine::new(EngineKind::ZipServ, LlmModel::Llama31_8b, cluster);
    let vllm = ServingEngine::new(EngineKind::Vllm, LlmModel::Llama31_8b, cluster);
    let mut rows = Vec::new();
    for (batch, prompt) in [(8u64, 512u64), (8, 2048), (32, 1024)] {
        let floor = vllm.prefill_ms(batch, prompt);
        let serial = zip.prefill_ms(batch, prompt);
        let overlapped = zip.prefill_ms_overlapped(batch, prompt);
        rows.push(vec![
            format!("bs{batch}/p{prompt}"),
            f2(floor),
            format!("{} ({:+.1}%)", f2(serial), 100.0 * (serial / floor - 1.0)),
            format!(
                "{} ({:+.1}%)",
                f2(overlapped),
                100.0 * (overlapped / floor - 1.0)
            ),
        ]);
    }
    format!(
        "Prefill decompression overhead (paper §6.4: ~4%/2% at N=8192/16384, serial):\n{}\
         (the stream-overlapped pipeline can dip below the serial dense floor because\n\
         the kernel-graph simulator also overlaps consecutive GEMMs' memory/compute)\n",
        render(
            &[
                "workload",
                "dense floor (ms)",
                "serial decoupled",
                "stream-overlapped"
            ],
            &rows
        )
    )
}

/// §7 orthogonality: lossless compression atop INT8 quantization.
pub fn quant_stack() -> String {
    use zipserv_kernels::marlin_model::MarlinW8A16;
    use zipserv_kernels::quant::{residual_compression, CompressedW8Kernel, QuantizedMatrix};
    let w = WeightGen::new(0.018).seed(123).matrix(512, 512);
    let q = QuantizedMatrix::quantize(&w);
    let err = q.relative_error(&w);
    let residual = residual_compression(&q);
    let spec = Gpu::Rtx4090.spec();
    let shape = GemmShape::new(28672, 4096, 32);
    let marlin = MarlinW8A16::time(shape, &spec).total_us;
    let combined = CompressedW8Kernel::new(residual.fraction())
        .time(shape, &spec)
        .total_us;
    format!(
        "Lossy + lossless stacking (§7: ZipServ is orthogonal to quantization):\n\
         INT8 per-row absmax error   : {:.3}% relative RMSE (lossy — TCA-TBE alone is exact)\n\
         residual lossless ratio     : {:.3}x on the INT8 codes (real Huffman)\n\
         effective bits per weight   : 16 -> 8 -> {:.2}\n\
         kernel, 28672x4096 @ N=32   : Marlin {:.3} ms -> compressed-W8 {:.3} ms ({:.2}x)\n",
        100.0 * err,
        residual.ratio(),
        8.0 * residual.fraction(),
        marlin / 1e3,
        combined / 1e3,
        marlin / combined,
    )
}

/// Pipeline schedules and chunked prefill: GPipe-vs-1F1B bubble
/// fractions across the (pp, m) grid, then the serving-level payoff —
/// chunked prefill vs legacy whole-prefill admission on the paper's
/// mixed-priority traffic at pp = 2.
///
/// Prints a machine-readable `FIG_PIPELINE` line consumed by the CI
/// smoke check: the minimum GPipe/1F1B bubble gain over the grid (> 1
/// certifies 1F1B strictly below GPipe at every swept point), one
/// representative grid point, the interactive p99 TTFT gain from chunked
/// prefill, and its throughput ratio. All four are deterministic model
/// outputs, so the gates are symmetric like `FIG_TP_SCALING`.
pub fn pipeline() -> String {
    use zipserv_serve::parallel::{PipelineKind, PipelineSchedule};
    use zipserv_serve::policy::{Priority, PriorityClass};
    use zipserv_serve::scheduler::{run_policy, ScheduleReport};
    use zipserv_serve::workload::ArrivalMix;

    // GPipe vs 1F1B across the grid. The slot count s + m - 1 is shared;
    // only the idle fraction moves.
    let mut rows = Vec::new();
    let mut min_gain = f64::INFINITY;
    let mut gain_pp4_m8 = 0.0;
    for pp in [2u32, 4, 8] {
        for m in [2u32, 4, 8, 16] {
            let gpipe = PipelineSchedule::new(pp, m);
            let one_f = PipelineSchedule::new(pp, m).with_kind(PipelineKind::OneFOneB);
            let gain = gpipe.bubble_fraction() / one_f.bubble_fraction();
            min_gain = min_gain.min(gain);
            if pp == 4 && m == 8 {
                gain_pp4_m8 = gain;
            }
            rows.push(vec![
                format!("pp{pp}/m{m}"),
                gpipe.slots().to_string(),
                pct(gpipe.bubble_fraction()),
                pct(one_f.bubble_fraction()),
                format!("{gain:.2}x"),
            ]);
        }
    }
    let mut out = format!(
        "Pipeline schedules — GPipe vs 1F1B bubble fraction over the (pp, m) grid:\n{}\
         (1F1B keeps the s + m - 1 slot count but shrinks steady-state idle\n\
         to (pp - 1) / m slots; minimum bubble gain over the grid: {min_gain:.2}x)\n",
        render(
            &["deployment", "slots", "GPipe bubble", "1F1B bubble", "gain"],
            &rows
        )
    );

    // Chunked prefill vs legacy whole-prefill on the pp = 2 deployment:
    // interactive prompts overtake long batch prefills, so the tail TTFT
    // collapses while throughput stays within a few percent.
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 37);
    let build = |chunked: bool| {
        ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2))
            .chunked_prefill(chunked)
            .build()
    };
    let interactive_ttfts = |r: &ScheduleReport| -> Vec<f64> {
        let mut v: Vec<f64> = r
            .completions
            .iter()
            .filter(|c| c.priority == PriorityClass::Interactive)
            .map(|c| c.ttft_s)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite TTFT"));
        v
    };
    let quantile = |sorted: &[f64], q: f64| -> f64 {
        let idx = ((sorted.len() as f64) * q).ceil() as usize;
        sorted[idx.clamp(1, sorted.len()) - 1]
    };
    let legacy = run_policy(&build(false), &Priority::default(), 64, arrivals.clone());
    let chunked = run_policy(&build(true), &Priority::default(), 64, arrivals);
    let mut rows = Vec::new();
    let mut p99 = [0.0f64; 2];
    for (i, (label, r)) in [
        ("legacy whole-prefill", &legacy),
        ("chunked prefill", &chunked),
    ]
    .iter()
    .enumerate()
    {
        let ttfts = interactive_ttfts(r);
        p99[i] = quantile(&ttfts, 0.99);
        rows.push(vec![
            label.to_string(),
            f2(ttfts.iter().sum::<f64>() / ttfts.len() as f64),
            f2(quantile(&ttfts, 0.5)),
            f2(p99[i]),
            format!("{:.1}", r.throughput_tps),
            r.preemptions.to_string(),
        ]);
    }
    let ttft_gain = p99[0] / p99[1];
    let tput_ratio = chunked.throughput_tps / legacy.throughput_tps;
    out.push_str(&format!(
        "\nChunked prefill — ZipServ PP2 (L40S, LLaMA3.1-8B), paper mix (12 req/s, 80 reqs), priority policy:\n{}",
        render(
            &[
                "prefill mode",
                "int. TTFT mean",
                "int. TTFT p50",
                "int. TTFT p99",
                "tput t/s",
                "preempt",
            ],
            &rows
        )
    ));
    out.push_str(&format!(
        "FIG_PIPELINE min_bubble_gain={min_gain:.4} bubble_gain_pp4_m8={gain_pp4_m8:.4} \
         ttft_p99_gain={ttft_gain:.4} tput_ratio={tput_ratio:.4}\n"
    ));
    out
}

/// Fleet-scale serving: the paper mix routed across four replicas under
/// every in-tree routing policy, plus an autoscaling race against a
/// fixed single replica. Prints a machine-readable `FIG_FLEET` line
/// consumed by the CI smoke gate; the model is deterministic, so the
/// gates are symmetric like `FIG_TP_SCALING`.
pub fn fleet() -> String {
    use zipserv_serve::fleet::{
        Autoscale, FleetReport, FleetRouter, LeastKvPressure, PowerOfTwoChoices, RoundRobin,
        RoutePolicy, SessionAffinity,
    };
    use zipserv_serve::policy::{Priority, PriorityClass};
    use zipserv_serve::workload::ArrivalMix;

    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::Rtx4090))
        .policy(Priority::default())
        .max_batch(16)
        .build();
    // Near-saturation load: light fleets make every policy look alike
    // (round-robin's blind interleave is near-optimal when queues never
    // form); routing only earns its keep once queues exist to avoid.
    let arrivals = ArrivalMix::paper_mix().generate(7.0, 320, 53);
    fn race(
        engine: &ServingEngine,
        arrivals: &[zipserv_serve::scheduler::Request],
        policy: impl RoutePolicy + 'static,
    ) -> FleetReport {
        FleetRouter::new(policy)
            .with_replicas(engine, 4)
            .run(arrivals.to_vec())
    }
    let reports = [
        race(&engine, &arrivals, RoundRobin::default()),
        race(&engine, &arrivals, LeastKvPressure),
        race(&engine, &arrivals, SessionAffinity::default()),
        race(&engine, &arrivals, PowerOfTwoChoices::default()),
    ];
    let p99 = |r: &FleetReport| {
        r.class_ttft_percentile(PriorityClass::Interactive, 0.99)
            .expect("interactive completions")
    };
    let mut rows = Vec::new();
    for r in &reports {
        rows.push(vec![
            r.route_policy.clone(),
            f2(p99(r)),
            f2(r.latency_percentile(0.99).expect("completions")),
            format!("{:.1}", r.throughput_tps()),
            format!("{:.3}", r.imbalance_ratio()),
            pct(r.slo_attainment().unwrap_or(1.0)),
        ]);
    }
    let mut out = format!(
        "Fleet routing — 4x ZipServ replicas (RTX 4090, LLaMA3.1-8B, batch 16), paper mix (7 req/s, 320 reqs):\n{}",
        render(
            &[
                "route policy",
                "int. TTFT p99",
                "lat p99",
                "tput t/s",
                "imbalance",
                "SLO",
            ],
            &rows
        )
    );

    let p2c_ttft_gain = p99(&reports[0]) / p99(&reports[3]);
    let p2c_tput_ratio = reports[3].throughput_tps() / reports[0].throughput_tps();
    // Session affinity's sticky hashing is the fleet's worst-balanced
    // policy: its max-over-mean replica load is the imbalance headline.
    let imbalance_ratio = reports[2].imbalance_ratio();

    // Autoscaling race: start from one replica and let queue depth grow
    // the fleet to four, against a fixed single replica on the same trace.
    let autoscaled = FleetRouter::new(LeastKvPressure)
        .with_replica(engine.clone())
        .autoscale(Autoscale {
            min_replicas: 1,
            max_replicas: 4,
            ..Autoscale::default()
        })
        .run(arrivals.clone());
    let fixed = FleetRouter::new(LeastKvPressure)
        .with_replica(engine.clone())
        .run(arrivals);
    let autoscale_tput_ratio = autoscaled.throughput_tps() / fixed.throughput_tps();
    out.push_str(&format!(
        "\nAutoscaling (1 -> {} replicas, {} scale events): {:.1} t/s vs fixed single replica {:.1} t/s ({autoscale_tput_ratio:.2}x)\n",
        autoscaled.per_replica.len(),
        autoscaled.autoscale_events.len(),
        autoscaled.throughput_tps(),
        fixed.throughput_tps(),
    ));
    out.push_str(&format!(
        "FIG_FLEET p2c_ttft_gain={p2c_ttft_gain:.4} p2c_tput_ratio={p2c_tput_ratio:.4} \
         imbalance_ratio={imbalance_ratio:.4} autoscale_tput_ratio={autoscale_tput_ratio:.4}\n"
    ));
    out
}

/// Prefix caching on the multi-tenant mix: the same single-replica
/// deployment and arrival stream raced with the shared-prefix registry
/// off (the legacy bit-compat path) and on, then the four-replica
/// session-affinity fleet where sticky tenants keep their prefixes hot
/// per replica. Prints a machine-readable `FIG_PREFIX` line consumed by
/// the CI smoke gate; the model is deterministic, so the gates are
/// symmetric like `FIG_FLEET`.
pub fn prefix() -> String {
    use zipserv_serve::fleet::{FleetRouter, SessionAffinity};
    use zipserv_serve::policy::{Priority, PriorityClass};
    use zipserv_serve::scheduler::run_policy;
    use zipserv_serve::workload::ArrivalMix;

    let build = |caching: bool| {
        ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::single(Gpu::Rtx4090))
            .policy(Priority::default())
            .max_batch(16)
            .prefix_caching(caching)
            .build()
    };
    // The multi-tenant companion of the paper mix: tenant chat with
    // shared system prompts and follow-ups, templated API traffic, and
    // parallel sampling — every shape the registry can hit on.
    let arrivals = ArrivalMix::multi_tenant_mix().generate(7.0, 320, 53);
    let prompt_tokens: u64 = arrivals.iter().map(|r| r.prompt_len).sum();

    let interactive_ttfts = |r: &zipserv_serve::scheduler::ScheduleReport| -> Vec<f64> {
        let mut v: Vec<f64> = r
            .completions
            .iter()
            .filter(|c| c.priority == PriorityClass::Interactive)
            .map(|c| c.ttft_s)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite TTFT"));
        v
    };
    let quantile = |sorted: &[f64], q: f64| -> f64 {
        let idx = ((sorted.len() as f64) * q).ceil() as usize;
        sorted[idx.clamp(1, sorted.len()) - 1]
    };

    let baseline = run_policy(&build(false), &Priority::default(), 16, arrivals.clone());
    let cached = run_policy(&build(true), &Priority::default(), 16, arrivals.clone());
    let mut rows = Vec::new();
    let mut p99 = [0.0f64; 2];
    for (i, (label, r)) in [("caching off", &baseline), ("caching on", &cached)]
        .iter()
        .enumerate()
    {
        let ttfts = interactive_ttfts(r);
        p99[i] = quantile(&ttfts, 0.99);
        rows.push(vec![
            label.to_string(),
            pct(r.prefix.hit_rate()),
            r.prefix.tokens_saved.to_string(),
            pct(r.prefix.tokens_saved as f64 / prompt_tokens as f64),
            f2(quantile(&ttfts, 0.5)),
            f2(p99[i]),
            format!("{:.1}", r.throughput_tps),
        ]);
    }
    let flops_saved = cached.prefix.tokens_saved as f64 / prompt_tokens as f64;
    let ttft_gain = p99[0] / p99[1];
    let hit_rate = cached.prefix.hit_rate();
    let tput_ratio = cached.throughput_tps / baseline.throughput_tps;
    let mut out = format!(
        "Prefix caching — ZipServ (RTX 4090, LLaMA3.1-8B, batch 16), multi-tenant mix (7 req/s, 320 reqs), priority policy:\n{}",
        render(
            &[
                "prefix cache",
                "hit rate",
                "tokens saved",
                "FLOPs saved",
                "int. TTFT p50",
                "int. TTFT p99",
                "tput t/s",
            ],
            &rows
        )
    );

    // Fleet compounding: session-affinity routing keeps each tenant on
    // one replica, so per-replica registries see the same hit stream a
    // single box would — the per-replica stats fold into FleetReport.
    let fleet = |caching: bool| {
        FleetRouter::new(SessionAffinity::default())
            .with_replicas(&build(caching), 4)
            .run(arrivals.clone())
    };
    let fleet_off = fleet(false);
    let fleet_on = fleet(true);
    let fleet_stats = fleet_on.prefix();
    out.push_str(&format!(
        "\nSession-affinity fleet (4 replicas): hit rate {}, {} tokens saved ({} of prefill), tput {:.1} vs {:.1} t/s uncached\n",
        pct(fleet_stats.hit_rate()),
        fleet_stats.tokens_saved,
        pct(fleet_stats.tokens_saved as f64 / prompt_tokens as f64),
        fleet_on.throughput_tps(),
        fleet_off.throughput_tps(),
    ));
    out.push_str(&format!(
        "FIG_PREFIX flops_saved={flops_saved:.4} ttft_gain={ttft_gain:.4} \
         hit_rate={hit_rate:.4} tput_ratio={tput_ratio:.4}\n"
    ));
    out
}

/// A named experiment: `(id, generator)`.
pub type Experiment = (&'static str, fn() -> String);

/// Every experiment in order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("fig01", fig01 as fn() -> String),
        ("fig02", fig02),
        ("contiguity", contiguity),
        ("fig05", fig05),
        ("codeword", codeword),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("offline", offline),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", fig18),
        ("memory", memory_table),
        ("ablation", ablation),
        ("online", online),
        ("sched", sched),
        ("tp", tp_parallel),
        ("pipeline", pipeline),
        ("fleet", fleet),
        ("prefix", prefix),
        ("fault", fault_recovery),
        ("kv", kv_compression),
        ("prefill", prefill_overlap),
        ("quant", quant_stack),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_figures_render() {
        // Smoke-test the cheap generators (the expensive ones run in the
        // repro binary / criterion benches).
        for gen in [
            fig05 as fn() -> String,
            codeword,
            fig12,
            fig14,
            fig15,
            fig18,
            memory_table,
        ] {
            let s = gen();
            assert!(s.len() > 100, "figure output too short: {s}");
        }
    }

    #[test]
    fn experiment_index_is_complete() {
        let ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
        for want in [
            "fig01",
            "fig02",
            "contiguity",
            "fig05",
            "codeword",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "offline",
            "fig16",
            "fig17",
            "fig18",
            "memory",
            "fleet",
            "prefix",
        ] {
            assert!(ids.contains(&want), "missing experiment {want}");
        }
    }
}

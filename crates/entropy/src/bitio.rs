//! MSB-first bit-level I/O used by the Huffman codec.

use crate::CodecError;

/// Writes bits MSB-first into a growable byte buffer.
///
/// # Example
///
/// ```
/// use zipserv_entropy::bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0b1, 1);
/// let bytes = w.into_bytes();
/// assert_eq!(bytes, vec![0b1011_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0..8).
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `value`, MSB of that field first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        // Emit one bit at a time; simple and fast enough for the tooling.
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.used == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("just pushed");
            *last |= (bit as u8) << (7 - self.used);
            self.used = (self.used + 1) % 8;
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Pads the final partial byte with zeros and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Pads to a byte boundary in place.
    pub fn align_to_byte(&mut self) {
        self.used = 0;
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes` starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] past the end of the buffer.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, CodecError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit as u32)
    }

    /// Reads `count` bits MSB-first into the low bits of the result.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than `count` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u32) -> Result<u32, CodecError> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        if self.remaining_bits() < count as usize {
            return Err(CodecError::UnexpectedEof);
        }
        let mut out = 0u32;
        for _ in 0..count {
            out = (out << 1) | self.read_bit()?;
        }
        Ok(out)
    }

    /// Skips to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Peeks `count` bits without consuming them, zero-padding past the end
    /// of the buffer (the LUT decoder's window read).
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn peek_bits(&self, count: u32) -> u32 {
        assert!(count <= 32, "cannot peek more than 32 bits at once");
        let mut out = 0u32;
        for i in 0..count as usize {
            let pos = self.pos + i;
            let byte = pos / 8;
            let bit = if byte < self.bytes.len() {
                (self.bytes[byte] >> (7 - (pos % 8))) & 1
            } else {
                0
            };
            out = (out << 1) | bit as u32;
        }
        out
    }

    /// Consumes `count` bits previously inspected with
    /// [`BitReader::peek_bits`]. Consuming past the end is clamped (the
    /// caller is responsible for symbol-count bookkeeping).
    pub fn consume(&mut self, count: u32) {
        self.pos = (self.pos + count as usize).min(self.bytes.len() * 8 + 32);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut w = BitWriter::new();
        w.write_bits(0b1101, 4);
        w.write_bits(0b0, 1);
        w.write_bits(0b111111, 6);
        assert_eq!(w.bit_len(), 11);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1101);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(6).unwrap(), 0b111111);
    }

    #[test]
    fn eof_detection() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn write_32_bits_at_once() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEADBEEF, 32);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn zero_count_writes_nothing() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn align_to_byte() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_to_byte();
        w.write_bits(0xAB, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000, 0xAB]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1);
        r.align_to_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn bit_positions_track() {
        let bytes = [0u8; 4];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 32);
        r.read_bits(5).unwrap();
        assert_eq!(r.bit_pos(), 5);
        assert_eq!(r.remaining_bits(), 27);
    }

    #[test]
    fn peek_does_not_consume() {
        let bytes = [0b1011_0110u8, 0b1100_0000];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(4), 0b1011);
        assert_eq!(r.peek_bits(4), 0b1011, "repeated peek is stable");
        assert_eq!(r.bit_pos(), 0);
        r.consume(4);
        assert_eq!(r.peek_bits(4), 0b0110);
        assert_eq!(r.read_bits(4).unwrap(), 0b0110);
    }

    #[test]
    fn peek_zero_pads_past_end() {
        let bytes = [0xFFu8];
        let r = BitReader::new(&bytes);
        // 8 real ones followed by 4 padded zeros.
        assert_eq!(r.peek_bits(12), 0b1111_1111_0000);
        let empty = BitReader::new(&[]);
        assert_eq!(empty.peek_bits(16), 0);
    }

    #[test]
    fn peek_consume_equivalent_to_read() {
        let bytes = [0xA5u8, 0x3C, 0x7E];
        let mut a = BitReader::new(&bytes);
        let mut b = BitReader::new(&bytes);
        for count in [3u32, 5, 7, 9] {
            let peeked = b.peek_bits(count);
            b.consume(count);
            assert_eq!(a.read_bits(count).unwrap(), peeked);
        }
        assert_eq!(a.bit_pos(), b.bit_pos());
    }

    #[test]
    fn many_random_fields_roundtrip() {
        // Deterministic pseudo-random field widths/values.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut fields = Vec::new();
        let mut w = BitWriter::new();
        for _ in 0..500 {
            let count = next() % 25 + 1;
            let value = next() & ((1u32 << count) - 1).max(1);
            let value = if count == 32 {
                value
            } else {
                value & ((1 << count) - 1)
            };
            w.write_bits(value, count);
            fields.push((value, count));
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (value, count) in fields {
            assert_eq!(r.read_bits(count).unwrap(), value);
        }
    }
}

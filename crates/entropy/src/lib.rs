//! Baseline lossless entropy codecs for BF16 LLM weights.
//!
//! ZipServ's evaluation compares TCA-TBE against three entropy-coded
//! baselines — DFloat11 (canonical Huffman), DietGPU and nvCOMP (rANS). This
//! crate implements those codec families from scratch, bit-exactly:
//!
//! * [`bitio`] — MSB-first bit-level readers/writers;
//! * [`huffman`] — canonical, length-limited Huffman coding over byte
//!   symbols, plus a DFloat11-style chunked framing ([`huffman::ChunkedHuffman`])
//!   whose decode produces the *symbol-length traces* the GPU divergence
//!   model consumes;
//! * [`rans`] — a 32-bit range asymmetric numeral system codec with the
//!   interleaved layout used by GPU rANS implementations;
//! * [`split`] — BF16 plane splitting: the exponent byte stream (what the
//!   entropy coder sees) and the packed sign/mantissa stream (stored raw).
//!
//! All codecs round-trip bit-exactly; property tests in each module verify
//! `decode(encode(x)) == x` over adversarial inputs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitio;
pub mod huffman;
pub mod rans;
pub mod split;

use core::fmt;

/// Error type for the codecs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed stream ended before all symbols were decoded.
    UnexpectedEof,
    /// The stream contained an invalid code or corrupted header.
    Corrupt(&'static str),
    /// The symbol alphabet was empty or otherwise unusable.
    EmptyInput,
    /// The decoded payload failed its frame checksum: the stream decoded
    /// structurally but the bytes are wrong (bit-flipped frame, stale DMA).
    /// Serving treats this as a corrupted-frame fault and re-fetches the
    /// frame from the host copy.
    ChecksumMismatch {
        /// Checksum recorded at compression time.
        expected: u64,
        /// Checksum of the bytes actually decoded.
        actual: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
            CodecError::EmptyInput => write!(f, "input contains no symbols"),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: expected {expected:#018x}, decoded {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit checksum over a byte stream — the frame integrity check
/// every blob in this crate records at compression time and verifies after
/// decode. Not cryptographic; it exists to surface corrupted frames as a
/// typed [`CodecError::ChecksumMismatch`] instead of silently wrong
/// weights.
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Verifies `decoded` against a recorded checksum, the shared epilogue of
/// every decompress path in this crate.
///
/// # Errors
///
/// Returns [`CodecError::ChecksumMismatch`] when the checksums differ.
pub(crate) fn verify_checksum(decoded: &[u8], expected: u64) -> Result<(), CodecError> {
    let actual = checksum64(decoded);
    if actual != expected {
        return Err(CodecError::ChecksumMismatch { expected, actual });
    }
    Ok(())
}

/// Compression statistics shared by all codecs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed payload size in bytes.
    pub raw_bytes: usize,
    /// Compressed payload size in bytes (including headers/tables).
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Compression ratio `raw / compressed` (1.0 when compressed is empty).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Compressed size as a fraction of the raw size.
    pub fn fraction(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.raw_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ratio() {
        let s = CompressionStats {
            raw_bytes: 200,
            compressed_bytes: 100,
        };
        assert_eq!(s.ratio(), 2.0);
        assert_eq!(s.fraction(), 0.5);
    }

    #[test]
    fn stats_degenerate() {
        let s = CompressionStats {
            raw_bytes: 0,
            compressed_bytes: 0,
        };
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.fraction(), 1.0);
    }

    #[test]
    fn error_display() {
        assert!(CodecError::UnexpectedEof
            .to_string()
            .contains("unexpected end"));
        assert!(CodecError::Corrupt("bad table")
            .to_string()
            .contains("bad table"));
        let e = CodecError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn checksum_is_deterministic_and_sensitive() {
        assert_eq!(checksum64(b"frame"), checksum64(b"frame"));
        assert_ne!(checksum64(b"frame"), checksum64(b"frame\0"));
        assert_ne!(checksum64(b"frame"), checksum64(b"framf"));
        // FNV-1a offset basis for the empty stream.
        assert_eq!(checksum64(&[]), 0xCBF2_9CE4_8422_2325);
    }
}

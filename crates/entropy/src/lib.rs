//! Baseline lossless entropy codecs for BF16 LLM weights.
//!
//! ZipServ's evaluation compares TCA-TBE against three entropy-coded
//! baselines — DFloat11 (canonical Huffman), DietGPU and nvCOMP (rANS). This
//! crate implements those codec families from scratch, bit-exactly:
//!
//! * [`bitio`] — MSB-first bit-level readers/writers;
//! * [`huffman`] — canonical, length-limited Huffman coding over byte
//!   symbols, plus a DFloat11-style chunked framing ([`huffman::ChunkedHuffman`])
//!   whose decode produces the *symbol-length traces* the GPU divergence
//!   model consumes;
//! * [`rans`] — a 32-bit range asymmetric numeral system codec with the
//!   interleaved layout used by GPU rANS implementations;
//! * [`split`] — BF16 plane splitting: the exponent byte stream (what the
//!   entropy coder sees) and the packed sign/mantissa stream (stored raw).
//!
//! All codecs round-trip bit-exactly; property tests in each module verify
//! `decode(encode(x)) == x` over adversarial inputs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitio;
pub mod huffman;
pub mod rans;
pub mod split;

use core::fmt;

/// Error type for the codecs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed stream ended before all symbols were decoded.
    UnexpectedEof,
    /// The stream contained an invalid code or corrupted header.
    Corrupt(&'static str),
    /// The symbol alphabet was empty or otherwise unusable.
    EmptyInput,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
            CodecError::EmptyInput => write!(f, "input contains no symbols"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Compression statistics shared by all codecs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed payload size in bytes.
    pub raw_bytes: usize,
    /// Compressed payload size in bytes (including headers/tables).
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Compression ratio `raw / compressed` (1.0 when compressed is empty).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Compressed size as a fraction of the raw size.
    pub fn fraction(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.raw_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ratio() {
        let s = CompressionStats {
            raw_bytes: 200,
            compressed_bytes: 100,
        };
        assert_eq!(s.ratio(), 2.0);
        assert_eq!(s.fraction(), 0.5);
    }

    #[test]
    fn stats_degenerate() {
        let s = CompressionStats {
            raw_bytes: 0,
            compressed_bytes: 0,
        };
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.fraction(), 1.0);
    }

    #[test]
    fn error_display() {
        assert!(CodecError::UnexpectedEof.to_string().contains("unexpected end"));
        assert!(CodecError::Corrupt("bad table").to_string().contains("bad table"));
    }
}

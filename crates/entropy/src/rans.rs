//! Range asymmetric numeral system (rANS) coding, byte-renormalized, in the
//! interleaved multi-stream layout used by GPU decoders (DietGPU, nvCOMP).
//!
//! The encoder consumes symbols in reverse and renormalizes one byte at a
//! time from a 32-bit state; the decoder runs forward. The interleaved
//! variant round-robins symbols over `N` independent states so `N` GPU lanes
//! can decode in parallel — exactly the design whose *per-symbol
//! data-dependence* (§3.2 ❸: the state update depends on the decoded symbol)
//! the paper identifies as the SIMT bottleneck.
//!
//! Two frame layouts are provided:
//!
//! * [`RansBlob`] — all streams share one renormalization byte sequence, so
//!   stream `s` cannot take its next byte until every other stream has taken
//!   its turn. Faithful to the serial-dependence baseline, but the shared
//!   cursor forces a strict round-robin decode order.
//! * [`PlanarRansBlob`] — each stream owns a contiguous payload partition
//!   and its own byte cursor (the planar layout GPU decoders actually ship).
//!   Streams decode independently, in any order or all at once in lockstep
//!   rounds, so entropy decode parallelizes *within* a single tile's frame.

use crate::{CodecError, CompressionStats};

/// Probability resolution: frequencies are normalized to sum to `1 << PROB_BITS`.
pub const PROB_BITS: u32 = 12;
/// Frequencies are normalized to sum to this scale (`1 << PROB_BITS`).
pub const PROB_SCALE: u32 = 1 << PROB_BITS;
/// Lower bound of the renormalization interval.
const RANS_L: u32 = 1 << 23;

/// A frequency table normalized to [`PROB_SCALE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RansTable {
    freq: [u32; 256],
    cum: [u32; 257],
    /// Slot-to-symbol lookup (PROB_SCALE entries).
    slot_to_symbol: Vec<u8>,
}

impl RansTable {
    /// Builds a normalized table from raw counts.
    ///
    /// Every occurring symbol receives frequency ≥ 1 after normalization.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyInput`] if all counts are zero.
    pub fn from_counts(counts: &[u64; 256]) -> Result<Self, CodecError> {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Err(CodecError::EmptyInput);
        }
        // Initial proportional allocation, guaranteeing >= 1 per present symbol.
        let mut freq = [0u32; 256];
        let mut allocated: i64 = 0;
        for s in 0..256usize {
            if counts[s] > 0 {
                let f = ((counts[s] as u128 * PROB_SCALE as u128) / total as u128) as u32;
                freq[s] = f.max(1);
                allocated += freq[s] as i64;
            }
        }
        // Repair the sum to exactly PROB_SCALE, stealing from / giving to the
        // largest buckets (which changes their probability the least).
        let mut delta = allocated - PROB_SCALE as i64;
        while delta != 0 {
            if delta > 0 {
                let s = (0..256usize)
                    .filter(|&s| freq[s] > 1)
                    .max_by_key(|&s| freq[s])
                    .ok_or(CodecError::Corrupt("cannot normalize frequency table"))?;
                let take = (freq[s] as i64 - 1).min(delta);
                freq[s] -= take as u32;
                delta -= take;
            } else {
                let s = (0..256usize)
                    .filter(|&s| freq[s] > 0)
                    .max_by_key(|&s| freq[s])
                    .expect("total > 0 implies a present symbol");
                freq[s] += (-delta) as u32;
                delta = 0;
            }
        }
        Ok(Self::from_frequencies(freq))
    }

    /// Builds the table from already-normalized frequencies (sum must be
    /// exactly [`PROB_SCALE`]).
    ///
    /// # Panics
    ///
    /// Panics if the frequencies do not sum to `PROB_SCALE`.
    pub fn from_frequencies(freq: [u32; 256]) -> Self {
        let sum: u32 = freq.iter().sum();
        assert_eq!(sum, PROB_SCALE, "frequencies must sum to {PROB_SCALE}");
        let mut cum = [0u32; 257];
        for s in 0..256usize {
            cum[s + 1] = cum[s] + freq[s];
        }
        let mut slot_to_symbol = vec![0u8; PROB_SCALE as usize];
        for s in 0..256usize {
            for slot in cum[s]..cum[s + 1] {
                slot_to_symbol[slot as usize] = s as u8;
            }
        }
        RansTable {
            freq,
            cum,
            slot_to_symbol,
        }
    }

    /// Normalized frequency of `symbol`.
    #[inline]
    pub fn frequency(&self, symbol: u8) -> u32 {
        self.freq[symbol as usize]
    }

    /// Cumulative frequency below `symbol`.
    #[inline]
    pub fn cumulative(&self, symbol: u8) -> u32 {
        self.cum[symbol as usize]
    }

    /// The symbol owning probability slot `slot`.
    #[inline]
    pub fn symbol_at(&self, slot: u32) -> u8 {
        self.slot_to_symbol[slot as usize]
    }

    /// Serialized form: the 256 normalized frequencies.
    pub fn frequencies(&self) -> [u32; 256] {
        self.freq
    }
}

/// Encodes one symbol into an rANS state, pushing renormalization bytes.
#[inline]
fn encode_symbol(state: &mut u32, out: &mut Vec<u8>, table: &RansTable, symbol: u8) {
    let f = table.frequency(symbol);
    debug_assert!(f > 0, "encoding symbol with zero frequency");
    let x_max = ((RANS_L >> PROB_BITS) << 8) * f;
    let mut x = *state;
    while x >= x_max {
        out.push((x & 0xFF) as u8);
        x >>= 8;
    }
    *state = ((x / f) << PROB_BITS) + (x % f) + table.cumulative(symbol);
}

/// Decodes one symbol from an rANS state, pulling renormalization bytes.
#[inline]
fn decode_symbol(
    state: &mut u32,
    input: &mut impl Iterator<Item = u8>,
    table: &RansTable,
) -> Result<u8, CodecError> {
    let x = *state;
    let slot = x & (PROB_SCALE - 1);
    let symbol = table.symbol_at(slot);
    let f = table.frequency(symbol);
    let c = table.cumulative(symbol);
    let mut x = f * (x >> PROB_BITS) + slot - c;
    while x < RANS_L {
        let byte = input.next().ok_or(CodecError::UnexpectedEof)?;
        x = (x << 8) | byte as u32;
    }
    *state = x;
    Ok(symbol)
}

/// An interleaved multi-stream rANS blob (DietGPU-style layout).
#[derive(Debug, Clone, PartialEq)]
pub struct RansBlob {
    freq: [u32; 256],
    /// Final encoder states, one per interleaved stream.
    states: Vec<u32>,
    /// Renormalization bytes in decode order.
    payload: Vec<u8>,
    n_symbols: usize,
    n_streams: usize,
    /// FNV-1a checksum of the raw input ([`crate::checksum64`]), verified
    /// after decode — rANS happily decodes a corrupted stream into
    /// plausible garbage, so the checksum is the only corruption signal.
    checksum: u64,
}

impl RansBlob {
    /// Stream interleaving factor used by GPU decoders (one warp's lanes).
    pub const DEFAULT_STREAMS: usize = 32;

    /// Compresses `data` with `n_streams` interleaved rANS states.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyInput`] for an empty input.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams == 0`.
    pub fn compress(data: &[u8], n_streams: usize) -> Result<Self, CodecError> {
        assert!(n_streams > 0, "need at least one stream");
        let mut counts = [0u64; 256];
        for &b in data {
            counts[b as usize] += 1;
        }
        let table = RansTable::from_counts(&counts)?;

        // Encode in reverse so the decoder runs forward. Each stream owns
        // symbols i where i % n_streams == stream.
        let mut states = vec![RANS_L; n_streams];
        let mut reversed_payload = Vec::new();
        for i in (0..data.len()).rev() {
            let stream = i % n_streams;
            encode_symbol(&mut states[stream], &mut reversed_payload, &table, data[i]);
        }
        reversed_payload.reverse();
        Ok(RansBlob {
            freq: table.frequencies(),
            states,
            payload: reversed_payload,
            n_symbols: data.len(),
            n_streams,
            checksum: crate::checksum64(data),
        })
    }

    /// Decompresses the blob back to the original byte stream.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the payload is truncated, or
    /// [`CodecError::ChecksumMismatch`] if it decodes to the wrong bytes
    /// (a corrupted stream often still renormalizes cleanly).
    pub fn decompress(&self) -> Result<Vec<u8>, CodecError> {
        let table = RansTable::from_frequencies(self.freq);
        let mut states = self.states.clone();
        let mut bytes = self.payload.iter().copied();
        let mut out = Vec::with_capacity(self.n_symbols);
        for i in 0..self.n_symbols {
            let stream = i % self.n_streams;
            out.push(decode_symbol(&mut states[stream], &mut bytes, &table)?);
        }
        crate::verify_checksum(&out, self.checksum)?;
        Ok(out)
    }

    /// Compression statistics: payload + per-stream states + frequency table
    /// (256 × 12-bit entries packed) + length header + frame checksum.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats {
            raw_bytes: self.n_symbols,
            compressed_bytes: self.payload.len() + 4 * self.states.len() + 384 + 16 + 8,
        }
    }

    /// Number of interleaved streams.
    pub fn stream_count(&self) -> usize {
        self.n_streams
    }
}

/// A planar multi-stream rANS blob: stream `s` owns symbols
/// `s, s + N, s + 2N, …` *and* a contiguous payload partition holding only
/// its own renormalization bytes.
///
/// This removes the cross-stream byte-cursor dependence of [`RansBlob`]:
/// every stream carries its own state and its own cursor, so the decode of
/// one stream never waits on another. A warp decodes one symbol per lane
/// per lockstep round ([`PlanarRansBlob::decompress`]), and a single stream
/// can be decoded standalone ([`PlanarRansBlob::decompress_stream`]) — the
/// property that lets entropy decode parallelize within one tile.
///
/// The price is a per-stream length header (4 bytes/stream) in the frame,
/// accounted for in [`PlanarRansBlob::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanarRansBlob {
    freq: [u32; 256],
    /// Final encoder states, one per stream.
    states: Vec<u32>,
    /// Per-stream renormalization bytes, each in decode order.
    payloads: Vec<Vec<u8>>,
    n_symbols: usize,
    /// FNV-1a checksum of the raw input, verified after decode.
    checksum: u64,
}

impl PlanarRansBlob {
    /// Stream count matching one GPU warp, as in [`RansBlob::DEFAULT_STREAMS`].
    pub const DEFAULT_STREAMS: usize = 32;

    /// Compresses `data` into `n_streams` independent planar streams.
    ///
    /// All streams share one frequency table (one shared-memory table per
    /// tile on the GPU); only the payload bytes are partitioned.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyInput`] for an empty input.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams == 0`.
    pub fn compress(data: &[u8], n_streams: usize) -> Result<Self, CodecError> {
        assert!(n_streams > 0, "need at least one stream");
        let mut counts = [0u64; 256];
        for &b in data {
            counts[b as usize] += 1;
        }
        let table = RansTable::from_counts(&counts)?;

        // Encode each stream's subsequence in reverse into its own payload;
        // unlike `RansBlob`, bytes from different streams never interleave.
        let mut states = vec![RANS_L; n_streams];
        let mut payloads = vec![Vec::new(); n_streams];
        for i in (0..data.len()).rev() {
            let stream = i % n_streams;
            encode_symbol(&mut states[stream], &mut payloads[stream], &table, data[i]);
        }
        for payload in &mut payloads {
            payload.reverse();
        }
        Ok(PlanarRansBlob {
            freq: table.frequencies(),
            states,
            payloads,
            n_symbols: data.len(),
            checksum: crate::checksum64(data),
        })
    }

    /// Decompresses the blob back to the original byte stream.
    ///
    /// Runs the streams in lockstep rounds — round `r` decodes symbol `r`
    /// of every stream, each from its own state and cursor. Every step in a
    /// round is independent of the others; on a GPU the round is one
    /// warp-wide instruction, here it is a loop that could be a SIMD lane
    /// per stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if any stream's payload is
    /// truncated, or [`CodecError::ChecksumMismatch`] if the frame decodes
    /// to the wrong bytes.
    pub fn decompress(&self) -> Result<Vec<u8>, CodecError> {
        let table = RansTable::from_frequencies(self.freq);
        let n = self.payloads.len();
        let mut states = self.states.clone();
        let mut cursors: Vec<_> = self.payloads.iter().map(|p| p.iter().copied()).collect();
        let mut out = vec![0u8; self.n_symbols];
        let mut base = 0;
        while base < self.n_symbols {
            let lanes = n.min(self.n_symbols - base);
            for stream in 0..lanes {
                out[base + stream] =
                    decode_symbol(&mut states[stream], &mut cursors[stream], &table)?;
            }
            base += lanes;
        }
        crate::verify_checksum(&out, self.checksum)?;
        Ok(out)
    }

    /// Decodes a single stream standalone, returning its symbol subsequence
    /// (`data[stream], data[stream + N], …`) — no other stream's state or
    /// payload is touched.
    ///
    /// The frame checksum covers the whole input, so a lone stream cannot
    /// be integrity-checked here; callers that decode stream-by-stream must
    /// verify the reassembled frame (as [`PlanarRansBlob::decompress`]
    /// does).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if this stream's payload is
    /// truncated.
    ///
    /// # Panics
    ///
    /// Panics if `stream >= self.stream_count()`.
    pub fn decompress_stream(&self, stream: usize) -> Result<Vec<u8>, CodecError> {
        let n = self.payloads.len();
        assert!(stream < n, "stream {stream} out of range ({n} streams)");
        let table = RansTable::from_frequencies(self.freq);
        let mut state = self.states[stream];
        let mut cursor = self.payloads[stream].iter().copied();
        let count = self.n_symbols.saturating_sub(stream).div_ceil(n);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(decode_symbol(&mut state, &mut cursor, &table)?);
        }
        Ok(out)
    }

    /// Compression statistics: payload partitions + per-stream states and
    /// length headers + frequency table (256 × 12-bit entries packed) +
    /// length header + frame checksum.
    pub fn stats(&self) -> CompressionStats {
        let payload: usize = self.payloads.iter().map(Vec::len).sum();
        CompressionStats {
            raw_bytes: self.n_symbols,
            compressed_bytes: payload + 8 * self.payloads.len() + 384 + 16 + 8,
        }
    }

    /// Number of planar streams.
    pub fn stream_count(&self) -> usize {
        self.payloads.len()
    }

    /// Serializes the blob to a little-endian wire frame, for embedding in
    /// on-disk containers (the `.ztbe` format stores entropy-coded
    /// sections this way):
    ///
    /// ```text
    /// n_streams u32 | n_symbols u64 | checksum u64
    /// freq      256 × u32
    /// states    n_streams × u32
    /// payloads  n_streams × (len u32 | bytes)
    /// ```
    ///
    /// The frame carries the input checksum, so corruption anywhere in the
    /// payload surfaces as [`CodecError::ChecksumMismatch`] at decode time
    /// even when the surrounding container's own integrity check passes
    /// (or was itself tampered with).
    pub fn to_wire(&self) -> Vec<u8> {
        let payload: usize = self.payloads.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(4 + 8 + 8 + 1024 + 8 * self.payloads.len() + payload);
        out.extend_from_slice(&(self.payloads.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.n_symbols as u64).to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        for f in self.freq {
            out.extend_from_slice(&f.to_le_bytes());
        }
        for s in &self.states {
            out.extend_from_slice(&s.to_le_bytes());
        }
        for p in &self.payloads {
            out.extend_from_slice(&(p.len() as u32).to_le_bytes());
            out.extend_from_slice(p);
        }
        out
    }

    /// Reassembles a blob from its [`PlanarRansBlob::to_wire`] frame.
    ///
    /// Structural checks only — the content checksum is verified when the
    /// blob is actually decompressed.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] on a zero stream count and
    /// [`CodecError::UnexpectedEof`] on any truncation.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut buf = bytes;
        let mut take = |n: usize| -> Result<&[u8], CodecError> {
            if buf.len() < n {
                return Err(CodecError::UnexpectedEof);
            }
            let (head, rest) = buf.split_at(n);
            buf = rest;
            Ok(head)
        };
        let le_u32 = |b: &[u8]| u32::from_le_bytes(b.try_into().unwrap_or_default());
        let n_streams = le_u32(take(4)?) as usize;
        if n_streams == 0 {
            return Err(CodecError::Corrupt("planar frame with zero streams"));
        }
        let n_symbols = u64::from_le_bytes(take(8)?.try_into().unwrap_or_default()) as usize;
        let checksum = u64::from_le_bytes(take(8)?.try_into().unwrap_or_default());
        let mut freq = [0u32; 256];
        for f in freq.iter_mut() {
            *f = le_u32(take(4)?);
        }
        let mut states = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            states.push(le_u32(take(4)?));
        }
        let mut payloads = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            let len = le_u32(take(4)?) as usize;
            payloads.push(take(len)?.to_vec());
        }
        Ok(PlanarRansBlob {
            freq,
            states,
            payloads,
            n_symbols,
            checksum,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn skewed_data(n: usize) -> Vec<u8> {
        let mut state = 0xABCDEF12u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match state % 100 {
                    0..=44 => 121,
                    45..=69 => 120,
                    70..=89 => 122,
                    90..=95 => 119,
                    96..=98 => 123,
                    _ => (state >> 40) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn table_normalizes_to_scale() {
        let mut counts = [0u64; 256];
        counts[7] = 123;
        counts[8] = 456;
        counts[200] = 1;
        let t = RansTable::from_counts(&counts).unwrap();
        let sum: u32 = (0..=255u8).map(|s| t.frequency(s)).sum();
        assert_eq!(sum, PROB_SCALE);
        assert!(t.frequency(200) >= 1, "rare symbol keeps nonzero frequency");
        assert_eq!(t.frequency(9), 0);
    }

    #[test]
    fn slot_lookup_consistent_with_cumulative() {
        let mut counts = [0u64; 256];
        for s in 0..16u64 {
            counts[s as usize] = s + 1;
        }
        let t = RansTable::from_counts(&counts).unwrap();
        for s in 0..16u8 {
            let c = t.cumulative(s);
            if t.frequency(s) > 0 {
                assert_eq!(t.symbol_at(c), s);
                assert_eq!(t.symbol_at(c + t.frequency(s) - 1), s);
            }
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(RansBlob::compress(&[], 32), Err(CodecError::EmptyInput));
    }

    #[test]
    fn single_stream_roundtrip() {
        let data = skewed_data(10_000);
        let blob = RansBlob::compress(&data, 1).unwrap();
        assert_eq!(blob.decompress().unwrap(), data);
    }

    #[test]
    fn interleaved_roundtrip() {
        for n_streams in [2, 8, 32] {
            let data = skewed_data(12_345);
            let blob = RansBlob::compress(&data, n_streams).unwrap();
            assert_eq!(blob.stream_count(), n_streams);
            assert_eq!(blob.decompress().unwrap(), data, "streams {n_streams}");
        }
    }

    #[test]
    fn short_inputs_roundtrip() {
        for len in 1..64usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 % 5) as u8).collect();
            let blob = RansBlob::compress(&data, 32).unwrap();
            assert_eq!(blob.decompress().unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn constant_input_compresses_extremely_well() {
        let data = vec![99u8; 100_000];
        let blob = RansBlob::compress(&data, 32).unwrap();
        assert_eq!(blob.decompress().unwrap(), data);
        assert!(
            blob.stats().ratio() > 50.0,
            "ratio {}",
            blob.stats().ratio()
        );
    }

    #[test]
    fn skewed_compression_near_entropy() {
        let data = skewed_data(200_000);
        let mut counts = [0u64; 256];
        for &b in &data {
            counts[b as usize] += 1;
        }
        let total: u64 = counts.iter().sum();
        let entropy: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        let blob = RansBlob::compress(&data, 32).unwrap();
        let achieved_bits = blob.stats().compressed_bytes as f64 * 8.0 / data.len() as f64;
        // rANS should land within ~3% + headers of the entropy.
        assert!(
            achieved_bits < entropy * 1.05 + 0.2,
            "achieved {achieved_bits} entropy {entropy}"
        );
        assert_eq!(blob.decompress().unwrap(), data);
    }

    #[test]
    fn uniform_random_roundtrip() {
        let mut state = 42u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let blob = RansBlob::compress(&data, 32).unwrap();
        assert_eq!(blob.decompress().unwrap(), data);
    }

    #[test]
    fn truncated_payload_detected() {
        let data = skewed_data(5_000);
        let mut blob = RansBlob::compress(&data, 4).unwrap();
        blob.payload.truncate(blob.payload.len() / 2);
        // Historically a truncated stream could decode to garbage of the
        // right length and pass; the frame checksum makes every truncation
        // a hard error (EOF when renormalization starves, mismatch when it
        // limps through).
        assert!(matches!(
            blob.decompress(),
            Err(CodecError::UnexpectedEof) | Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn planar_roundtrip_across_stream_counts() {
        for n_streams in [1, 2, 8, 32] {
            let data = skewed_data(12_345);
            let blob = PlanarRansBlob::compress(&data, n_streams).unwrap();
            assert_eq!(blob.stream_count(), n_streams);
            assert_eq!(blob.decompress().unwrap(), data, "streams {n_streams}");
        }
    }

    #[test]
    fn planar_short_inputs_roundtrip() {
        // Fewer symbols than streams leaves most streams empty; they must
        // still frame and decode correctly.
        for len in 1..64usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 % 5) as u8).collect();
            let blob = PlanarRansBlob::compress(&data, 32).unwrap();
            assert_eq!(blob.decompress().unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn planar_empty_input_rejected() {
        assert_eq!(
            PlanarRansBlob::compress(&[], 32),
            Err(CodecError::EmptyInput)
        );
    }

    #[test]
    fn planar_streams_decode_independently_in_any_order() {
        // The point of the planar layout: each stream is self-contained.
        // Decode the streams standalone, in reverse order, and reassemble —
        // the result must match both the input and the lockstep decode.
        let data = skewed_data(9_001);
        let n = 8;
        let blob = PlanarRansBlob::compress(&data, n).unwrap();
        let mut reassembled = vec![0u8; data.len()];
        for stream in (0..n).rev() {
            let lane = blob.decompress_stream(stream).unwrap();
            for (r, byte) in lane.into_iter().enumerate() {
                reassembled[stream + r * n] = byte;
            }
        }
        assert_eq!(reassembled, data);
        assert_eq!(blob.decompress().unwrap(), data);
    }

    #[test]
    fn planar_stream_matches_its_subsequence() {
        let data = skewed_data(1_000);
        let n = 32;
        let blob = PlanarRansBlob::compress(&data, n).unwrap();
        for stream in [0, 1, 7, 31] {
            let expect: Vec<u8> = data.iter().copied().skip(stream).step_by(n).collect();
            assert_eq!(blob.decompress_stream(stream).unwrap(), expect);
        }
    }

    #[test]
    fn planar_compression_tracks_interleaved() {
        // Partitioning the payload must not cost measurable ratio: both
        // layouts emit the same renormalization bytes, just routed to
        // different buffers. Only the per-stream headers differ.
        let data = skewed_data(200_000);
        let shared = RansBlob::compress(&data, 32).unwrap();
        let planar = PlanarRansBlob::compress(&data, 32).unwrap();
        let payload: usize = planar.payloads.iter().map(Vec::len).sum();
        let diff = payload.abs_diff(shared.payload.len());
        assert!(diff <= 64, "payload sizes diverged by {diff} bytes");
        assert_eq!(planar.decompress().unwrap(), data);
    }

    #[test]
    fn planar_truncation_detected() {
        let data = skewed_data(5_000);
        let mut blob = PlanarRansBlob::compress(&data, 8).unwrap();
        let cut = blob.payloads[3].len() / 2;
        blob.payloads[3].truncate(cut);
        assert!(matches!(
            blob.decompress(),
            Err(CodecError::UnexpectedEof) | Err(CodecError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            blob.decompress_stream(3),
            Err(CodecError::UnexpectedEof)
        ));
    }

    #[test]
    fn planar_corruption_fails_checksum() {
        let data = skewed_data(5_000);
        let mut blob = PlanarRansBlob::compress(&data, 32).unwrap();
        let mid = blob.payloads[5].len() / 2;
        blob.payloads[5][mid] ^= 0x10;
        assert!(blob.decompress().is_err(), "corruption must not pass");
        let mut tampered = PlanarRansBlob::compress(&data, 32).unwrap();
        tampered.checksum ^= 1;
        assert!(matches!(
            tampered.decompress(),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        // rANS resynchronizes through corruption and emits plausible bytes;
        // only the checksum catches a mid-stream bit flip.
        let data = skewed_data(5_000);
        let mut blob = RansBlob::compress(&data, 32).unwrap();
        let mid = blob.payload.len() / 2;
        blob.payload[mid] ^= 0x10;
        assert!(blob.decompress().is_err(), "corruption must not pass");
        let mut tampered = RansBlob::compress(&data, 32).unwrap();
        tampered.checksum ^= 1;
        assert!(matches!(
            tampered.decompress(),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn planar_wire_roundtrip() {
        let data = skewed_data(4_096);
        let blob = PlanarRansBlob::compress(&data, 32).unwrap();
        let wire = blob.to_wire();
        let back = PlanarRansBlob::from_wire(&wire).unwrap();
        assert_eq!(back, blob);
        assert_eq!(back.decompress().unwrap(), data);
        // Truncation anywhere is a typed structural error.
        assert!(matches!(
            PlanarRansBlob::from_wire(&wire[..wire.len() - 1]),
            Err(CodecError::UnexpectedEof)
        ));
        assert!(matches!(
            PlanarRansBlob::from_wire(&wire[..3]),
            Err(CodecError::UnexpectedEof)
        ));
    }

    #[test]
    fn planar_wire_corruption_caught_by_frame_checksum() {
        // A bit flip deep in a payload partition survives the structural
        // parse (rANS resynchronizes into plausible garbage) but the frame
        // checksum riding in the wire format catches it at decode time.
        let data = skewed_data(4_096);
        let mut wire = PlanarRansBlob::compress(&data, 32).unwrap().to_wire();
        let off = wire.len() - 5;
        wire[off] ^= 0x20;
        let back = PlanarRansBlob::from_wire(&wire).unwrap();
        assert!(back.decompress().is_err(), "corruption must not pass");
    }
}

//! Canonical, length-limited Huffman coding over byte symbols, with the
//! DFloat11-style chunked GPU framing.
//!
//! DFloat11 compresses the BF16 exponent stream with Huffman codes and
//! decodes on the GPU in three stages (§3.2 of the paper): bitstream
//! partitioning, LUT symbol extraction and pointer advancement. The
//! variable-length symbols are what break SIMT lockstep. To let the GPU
//! model reason about that, [`ChunkedHuffman::decompress_traced`] returns a
//! [`DecodeTrace`] with the per-symbol code-length statistics the divergence
//! model consumes.

use crate::bitio::{BitReader, BitWriter};
use crate::{CodecError, CompressionStats};

/// Maximum code length for the canonical table (fits LUT-based decoders).
pub const MAX_CODE_LEN: u32 = 16;

/// A canonical Huffman code table over the 256 byte symbols.
///
/// # Example
///
/// ```
/// use zipserv_entropy::huffman::HuffmanTable;
///
/// let mut freqs = [0u64; 256];
/// freqs[b'a' as usize] = 90;
/// freqs[b'b' as usize] = 9;
/// freqs[b'c' as usize] = 1;
/// let table = HuffmanTable::from_frequencies(&freqs)?;
/// assert!(table.code_len(b'a') <= table.code_len(b'c'));
/// # Ok::<(), zipserv_entropy::CodecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanTable {
    /// Code length per symbol; 0 means the symbol does not occur.
    lengths: [u8; 256],
    /// Canonical code per symbol (valid when length > 0).
    codes: [u32; 256],
    /// Symbols sorted by (length, symbol) — decoding order.
    sorted_symbols: Vec<u8>,
    /// Per-length count of symbols.
    count_by_len: [u32; MAX_CODE_LEN as usize + 1],
    /// First canonical code of each length.
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    /// Index into `sorted_symbols` of the first symbol of each length.
    first_index: [u32; MAX_CODE_LEN as usize + 1],
}

impl HuffmanTable {
    /// Builds a canonical, length-limited table from symbol frequencies.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyInput`] if all frequencies are zero.
    pub fn from_frequencies(freqs: &[u64; 256]) -> Result<Self, CodecError> {
        let mut lengths = huffman_code_lengths(freqs)?;
        limit_lengths(&mut lengths, freqs);
        Ok(Self::from_lengths_unchecked(lengths))
    }

    /// Rebuilds a table from serialized code lengths.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] if the lengths violate the Kraft
    /// equality (i.e., do not describe a complete prefix code) or exceed
    /// [`MAX_CODE_LEN`].
    pub fn from_lengths(lengths: [u8; 256]) -> Result<Self, CodecError> {
        let mut kraft: u64 = 0;
        let mut any = false;
        for &len in &lengths {
            if len == 0 {
                continue;
            }
            any = true;
            if len as u32 > MAX_CODE_LEN {
                return Err(CodecError::Corrupt("code length exceeds limit"));
            }
            kraft += 1u64 << (MAX_CODE_LEN - len as u32);
        }
        if !any {
            return Err(CodecError::EmptyInput);
        }
        // A single-symbol alphabet gets a 1-bit code (kraft = 1/2); all other
        // valid tables satisfy the Kraft equality exactly.
        let single = lengths.iter().filter(|&&l| l > 0).count() == 1;
        if !single && kraft != 1u64 << MAX_CODE_LEN {
            return Err(CodecError::Corrupt("code lengths violate Kraft equality"));
        }
        Ok(Self::from_lengths_unchecked(lengths))
    }

    fn from_lengths_unchecked(lengths: [u8; 256]) -> Self {
        let mut sorted: Vec<u8> = (0u16..256)
            .map(|s| s as u8)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        sorted.sort_by_key(|&s| (lengths[s as usize], s));

        let mut count_by_len = [0u32; MAX_CODE_LEN as usize + 1];
        for &s in &sorted {
            count_by_len[lengths[s as usize] as usize] += 1;
        }

        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut first_index = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            first_code[len] = code;
            first_index[len] = index;
            code = (code + count_by_len[len]) << 1;
            index += count_by_len[len];
        }

        let mut codes = [0u32; 256];
        let mut next_code = first_code;
        for &s in &sorted {
            let len = lengths[s as usize] as usize;
            codes[s as usize] = next_code[len];
            next_code[len] += 1;
        }

        HuffmanTable {
            lengths,
            codes,
            sorted_symbols: sorted,
            count_by_len,
            first_code,
            first_index,
        }
    }

    /// Code length in bits for `symbol` (0 if the symbol never occurs).
    #[inline]
    pub fn code_len(&self, symbol: u8) -> u32 {
        self.lengths[symbol as usize] as u32
    }

    /// The canonical code bits for `symbol`.
    #[inline]
    pub fn code(&self, symbol: u8) -> u32 {
        self.codes[symbol as usize]
    }

    /// The serialized form: one length byte per symbol.
    pub fn to_lengths(&self) -> [u8; 256] {
        self.lengths
    }

    /// Expected bits per symbol under the given frequency distribution.
    pub fn expected_bits(&self, freqs: &[u64; 256]) -> f64 {
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut bits = 0.0;
        for (&f, &len) in freqs.iter().zip(self.lengths.iter()) {
            bits += f as f64 * len as f64;
        }
        bits / total as f64
    }

    /// Encodes `symbol` into the bit writer.
    #[inline]
    fn encode_symbol(&self, w: &mut BitWriter, symbol: u8) {
        let len = self.lengths[symbol as usize] as u32;
        debug_assert!(len > 0, "encoding symbol absent from table");
        w.write_bits(self.codes[symbol as usize], len);
    }

    /// Decodes one symbol, returning `(symbol, code_length)`.
    #[inline]
    fn decode_symbol(&self, r: &mut BitReader<'_>) -> Result<(u8, u32), CodecError> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | r.read_bit()?;
            let offset = code.wrapping_sub(self.first_code[len]);
            if offset < self.count_by_len[len] {
                let sym = self.sorted_symbols[(self.first_index[len] + offset) as usize];
                return Ok((sym, len as u32));
            }
        }
        Err(CodecError::Corrupt("no symbol within max code length"))
    }
}

/// Width of the single-level decode LUT (the hierarchical-LUT design of
/// DFloat11's §3.2 ❷, collapsed to one level since codes are ≤ 16 bits).
pub const LUT_BITS: u32 = 12;

/// A table-driven decoder: one `2^LUT_BITS`-entry table maps the next 12
/// bits directly to `(symbol, code length)`; rarer, longer codes escape to
/// the canonical bit-serial path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutDecoder {
    /// `(symbol, len)` per 12-bit prefix; `len == 0` marks an escape.
    primary: Vec<(u8, u8)>,
    table: HuffmanTable,
}

impl LutDecoder {
    /// Builds the LUT from a canonical table.
    pub fn new(table: HuffmanTable) -> Self {
        let mut primary = vec![(0u8, 0u8); 1usize << LUT_BITS];
        for s in 0..256usize {
            let len = table.lengths[s] as u32;
            if len == 0 || len > LUT_BITS {
                continue;
            }
            let code = table.codes[s];
            let fill = LUT_BITS - len;
            let base = (code << fill) as usize;
            for suffix in 0..(1usize << fill) {
                primary[base + suffix] = (s as u8, len as u8);
            }
        }
        LutDecoder { primary, table }
    }

    /// Decodes one symbol via the LUT, escaping to the canonical walk for
    /// codes longer than [`LUT_BITS`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or invalid input.
    #[inline]
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> Result<(u8, u32), CodecError> {
        let window = r.peek_bits(LUT_BITS);
        let (sym, len) = self.primary[window as usize];
        if len != 0 {
            if (r.remaining_bits() as u32) < len as u32 {
                return Err(CodecError::UnexpectedEof);
            }
            r.consume(len as u32);
            return Ok((sym, len as u32));
        }
        self.table.decode_symbol(r)
    }
}

/// Computes unrestricted Huffman code lengths with a pairing heap over
/// (weight, tie-break) nodes.
fn huffman_code_lengths(freqs: &[u64; 256]) -> Result<[u8; 256], CodecError> {
    #[derive(Clone)]
    struct Node {
        weight: u64,
        // Leaf symbol or internal children.
        children: Option<(usize, usize)>,
        symbol: u8,
        depth_tiebreak: u32,
    }

    let mut nodes: Vec<Node> = Vec::new();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32, usize)>> =
        std::collections::BinaryHeap::new();
    for (s, &freq) in freqs.iter().enumerate() {
        if freq > 0 {
            let id = nodes.len();
            nodes.push(Node {
                weight: freq,
                children: None,
                symbol: s as u8,
                depth_tiebreak: 0,
            });
            heap.push(std::cmp::Reverse((freqs[s], 0, id)));
        }
    }
    if heap.is_empty() {
        return Err(CodecError::EmptyInput);
    }
    let mut lengths = [0u8; 256];
    if heap.len() == 1 {
        let std::cmp::Reverse((_, _, id)) = heap.pop().expect("len 1");
        lengths[nodes[id].symbol as usize] = 1;
        return Ok(lengths);
    }
    while heap.len() >= 2 {
        let std::cmp::Reverse((w1, d1, a)) = heap.pop().expect("len >= 2");
        let std::cmp::Reverse((w2, d2, b)) = heap.pop().expect("len >= 2");
        let id = nodes.len();
        let depth = d1.max(d2) + 1;
        nodes.push(Node {
            weight: w1 + w2,
            children: Some((a, b)),
            symbol: 0,
            depth_tiebreak: depth,
        });
        heap.push(std::cmp::Reverse((w1 + w2, depth, id)));
    }
    // Walk the tree to assign depths.
    let std::cmp::Reverse((_, _, root)) = heap.pop().expect("root");
    let mut stack = vec![(root, 0u8)];
    while let Some((id, depth)) = stack.pop() {
        match nodes[id].children {
            Some((a, b)) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
            None => lengths[nodes[id].symbol as usize] = depth.max(1),
        }
    }
    let _ = nodes.iter().map(|n| n.depth_tiebreak).max(); // silence: tiebreak used in heap key
    let _ = nodes.first().map(|n| n.weight);
    Ok(lengths)
}

/// Enforces `MAX_CODE_LEN` by clamping over-long codes and repairing the
/// Kraft sum: lengthen the cheapest (most frequent excess-capacity) codes
/// while the code is over-complete, shorten the deepest while it is
/// under-complete.
fn limit_lengths(lengths: &mut [u8; 256], freqs: &[u64; 256]) {
    let max = MAX_CODE_LEN as u8;
    for l in lengths.iter_mut() {
        if *l > max {
            *l = max;
        }
    }
    let kraft = |lengths: &[u8; 256]| -> i64 {
        lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1i64 << (max - l) as u32)
            .sum()
    };
    let target = if lengths.iter().filter(|&&l| l > 0).count() == 1 {
        // Single symbol: 1-bit code, half the Kraft budget, and valid.
        return;
    } else {
        1i64 << max as u32
    };
    // Over-complete: lengthen codes, preferring the least frequent symbol
    // that still has room to grow (cost per unit of Kraft relief is lowest).
    while kraft(lengths) > target {
        let grow = (0..256usize)
            .filter(|&s| lengths[s] > 0 && lengths[s] < max)
            .min_by_key(|&s| (freqs[s], std::cmp::Reverse(lengths[s])))
            .expect("over-complete code must have a growable symbol");
        lengths[grow] += 1;
    }
    // Under-complete: shorten the deepest, most frequent symbols while the
    // shortening keeps the sum within budget.
    loop {
        let slack = target - kraft(lengths);
        if slack == 0 {
            break;
        }
        debug_assert!(slack > 0);
        let candidate = (0..256usize)
            .filter(|&s| {
                let l = lengths[s];
                l > 1 && (1i64 << (max - l + 1) as u32) - (1i64 << (max - l) as u32) <= slack
            })
            .max_by_key(|&s| (lengths[s], freqs[s]));
        match candidate {
            Some(s) => lengths[s] -= 1,
            None => break, // cannot repair further; code stays valid but padded
        }
    }
}

/// A single-stream Huffman-compressed blob.
#[derive(Debug, Clone, PartialEq)]
pub struct HuffmanBlob {
    table_lengths: [u8; 256],
    payload: Vec<u8>,
    n_symbols: usize,
    /// FNV-1a checksum of the raw input ([`crate::checksum64`]), verified
    /// after every decode so corrupted frames surface as
    /// [`CodecError::ChecksumMismatch`] instead of silently wrong bytes.
    checksum: u64,
}

impl HuffmanBlob {
    /// Compresses a byte stream with a table fit to its histogram.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyInput`] for an empty input.
    pub fn compress(data: &[u8]) -> Result<Self, CodecError> {
        let mut freqs = [0u64; 256];
        for &b in data {
            freqs[b as usize] += 1;
        }
        let table = HuffmanTable::from_frequencies(&freqs)?;
        let mut w = BitWriter::new();
        for &b in data {
            table.encode_symbol(&mut w, b);
        }
        Ok(HuffmanBlob {
            table_lengths: table.to_lengths(),
            payload: w.into_bytes(),
            n_symbols: data.len(),
            checksum: crate::checksum64(data),
        })
    }

    /// Decompresses back to the original byte stream.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the payload is truncated or corrupt, or
    /// [`CodecError::ChecksumMismatch`] if it decodes to the wrong bytes.
    pub fn decompress(&self) -> Result<Vec<u8>, CodecError> {
        let table = HuffmanTable::from_lengths(self.table_lengths)?;
        let mut r = BitReader::new(&self.payload);
        let mut out = Vec::with_capacity(self.n_symbols);
        for _ in 0..self.n_symbols {
            let (sym, _) = table.decode_symbol(&mut r)?;
            out.push(sym);
        }
        crate::verify_checksum(&out, self.checksum)?;
        Ok(out)
    }

    /// Decompresses via the table-driven fast path (identical output to
    /// [`HuffmanBlob::decompress`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the payload is truncated or corrupt, or
    /// [`CodecError::ChecksumMismatch`] if it decodes to the wrong bytes.
    pub fn decompress_fast(&self) -> Result<Vec<u8>, CodecError> {
        let lut = LutDecoder::new(HuffmanTable::from_lengths(self.table_lengths)?);
        let mut r = BitReader::new(&self.payload);
        let mut out = Vec::with_capacity(self.n_symbols);
        for _ in 0..self.n_symbols {
            let (sym, _) = lut.decode_symbol(&mut r)?;
            out.push(sym);
        }
        crate::verify_checksum(&out, self.checksum)?;
        Ok(out)
    }

    /// Compression statistics (payload + 256-byte table + 8-byte count +
    /// 8-byte checksum).
    pub fn stats(&self) -> CompressionStats {
        CompressionStats {
            raw_bytes: self.n_symbols,
            compressed_bytes: self.payload.len() + 256 + 8 + 8,
        }
    }
}

/// Per-decode statistics describing SIMT-hostile variability, consumed by
/// the GPU divergence model.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeTrace {
    /// Histogram of decoded code lengths (index = bits).
    pub length_histogram: [u64; MAX_CODE_LEN as usize + 1],
    /// Total symbols decoded.
    pub symbols: u64,
    /// Number of independent chunks in the frame.
    pub chunks: usize,
    /// Bits consumed by each chunk (load imbalance across threads).
    pub chunk_bits: Vec<u64>,
}

impl DecodeTrace {
    /// Mean decoded code length in bits.
    pub fn mean_code_len(&self) -> f64 {
        if self.symbols == 0 {
            return 0.0;
        }
        let total: u64 = self
            .length_histogram
            .iter()
            .enumerate()
            .map(|(len, &n)| len as u64 * n)
            .sum();
        total as f64 / self.symbols as f64
    }

    /// Expected per-warp maximum code length relative to the mean — the
    /// first-order SIMT divergence penalty: in lockstep execution every lane
    /// waits for the slowest symbol in the warp.
    ///
    /// Computed exactly from the length distribution for a warp of 32
    /// independent draws: `E[max of 32] / mean`.
    pub fn warp_divergence_factor(&self) -> f64 {
        if self.symbols == 0 {
            return 1.0;
        }
        let n = self.symbols as f64;
        // CDF over lengths.
        let mut cdf = [0.0f64; MAX_CODE_LEN as usize + 1];
        let mut acc = 0.0;
        for (len, slot) in cdf.iter_mut().enumerate() {
            acc += self.length_histogram[len] as f64 / n;
            *slot = acc;
        }
        // E[max of 32 iid draws] = sum over len of P(max >= len).
        let mut expected_max = 0.0;
        for len in 1..cdf.len() {
            let p_below = cdf[len - 1];
            expected_max += 1.0 - p_below.powi(32);
        }
        let mean = self.mean_code_len();
        if mean == 0.0 {
            1.0
        } else {
            (expected_max / mean).max(1.0)
        }
    }

    /// Coefficient of variation of per-chunk bit counts (inter-thread load
    /// imbalance in the partitioned decoder).
    pub fn chunk_imbalance(&self) -> f64 {
        if self.chunk_bits.len() <= 1 {
            return 0.0;
        }
        let n = self.chunk_bits.len() as f64;
        let mean = self.chunk_bits.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .chunk_bits
            .iter()
            .map(|&b| (b as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// DFloat11-style chunked Huffman frame: one global canonical table, the
/// symbol stream split into fixed-size chunks, each chunk byte-aligned with
/// its start offset recorded so GPU threads can decode chunks independently.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedHuffman {
    table_lengths: [u8; 256],
    /// Byte offset of each chunk within `payload`.
    chunk_offsets: Vec<u32>,
    payload: Vec<u8>,
    n_symbols: usize,
    chunk_symbols: usize,
    /// FNV-1a checksum of the raw input, verified after decode (see
    /// [`HuffmanBlob`]).
    checksum: u64,
}

impl ChunkedHuffman {
    /// Default chunk size used by the GPU-style framing.
    pub const DEFAULT_CHUNK_SYMBOLS: usize = 8192;

    /// Compresses `data` into chunks of `chunk_symbols` symbols each.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::EmptyInput`] for an empty input.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_symbols == 0`.
    pub fn compress(data: &[u8], chunk_symbols: usize) -> Result<Self, CodecError> {
        assert!(chunk_symbols > 0, "chunk size must be positive");
        let mut freqs = [0u64; 256];
        for &b in data {
            freqs[b as usize] += 1;
        }
        let table = HuffmanTable::from_frequencies(&freqs)?;
        let mut payload = Vec::new();
        let mut chunk_offsets = Vec::new();
        for chunk in data.chunks(chunk_symbols) {
            chunk_offsets.push(payload.len() as u32);
            let mut w = BitWriter::new();
            for &b in chunk {
                table.encode_symbol(&mut w, b);
            }
            payload.extend_from_slice(&w.into_bytes());
        }
        Ok(ChunkedHuffman {
            table_lengths: table.to_lengths(),
            chunk_offsets,
            payload,
            n_symbols: data.len(),
            chunk_symbols,
            checksum: crate::checksum64(data),
        })
    }

    /// Decompresses all chunks.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt chunks.
    pub fn decompress(&self) -> Result<Vec<u8>, CodecError> {
        Ok(self.decompress_traced()?.0)
    }

    /// Decompresses and returns the [`DecodeTrace`] for divergence modeling.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt chunks.
    pub fn decompress_traced(&self) -> Result<(Vec<u8>, DecodeTrace), CodecError> {
        let table = HuffmanTable::from_lengths(self.table_lengths)?;
        let mut out = Vec::with_capacity(self.n_symbols);
        let mut length_histogram = [0u64; MAX_CODE_LEN as usize + 1];
        let mut chunk_bits = Vec::with_capacity(self.chunk_offsets.len());
        for (i, &off) in self.chunk_offsets.iter().enumerate() {
            let end = self
                .chunk_offsets
                .get(i + 1)
                .map(|&o| o as usize)
                .unwrap_or(self.payload.len());
            let symbols_in_chunk =
                (self.n_symbols - i * self.chunk_symbols).min(self.chunk_symbols);
            let mut r = BitReader::new(&self.payload[off as usize..end]);
            let mut bits = 0u64;
            for _ in 0..symbols_in_chunk {
                let (sym, len) = table.decode_symbol(&mut r)?;
                out.push(sym);
                length_histogram[len as usize] += 1;
                bits += len as u64;
            }
            chunk_bits.push(bits);
        }
        crate::verify_checksum(&out, self.checksum)?;
        let trace = DecodeTrace {
            length_histogram,
            symbols: self.n_symbols as u64,
            chunks: self.chunk_offsets.len(),
            chunk_bits,
        };
        Ok((out, trace))
    }

    /// Compression statistics, counting table, offsets, payload and the
    /// frame checksum.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats {
            raw_bytes: self.n_symbols,
            compressed_bytes: self.payload.len() + 256 + 4 * self.chunk_offsets.len() + 16 + 8,
        }
    }

    /// Number of chunks in the frame.
    pub fn chunk_count(&self) -> usize {
        self.chunk_offsets.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn skewed_data(n: usize) -> Vec<u8> {
        // Zipf-ish over a handful of symbols, like an exponent stream.
        let mut state = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let r = state % 100;
                match r {
                    0..=39 => 121,
                    40..=64 => 120,
                    65..=84 => 122,
                    85..=92 => 119,
                    93..=96 => 123,
                    97..=98 => 118,
                    _ => (state >> 32) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn table_orders_by_frequency() {
        let mut freqs = [0u64; 256];
        freqs[0] = 1000;
        freqs[1] = 100;
        freqs[2] = 10;
        freqs[3] = 1;
        let t = HuffmanTable::from_frequencies(&freqs).unwrap();
        assert!(t.code_len(0) <= t.code_len(1));
        assert!(t.code_len(1) <= t.code_len(2));
        assert!(t.code_len(2) <= t.code_len(3));
    }

    #[test]
    fn single_symbol_roundtrip() {
        let data = vec![42u8; 1000];
        let blob = HuffmanBlob::compress(&data).unwrap();
        assert_eq!(blob.decompress().unwrap(), data);
        // 1 bit per symbol -> 125 payload bytes (+ table, count, checksum).
        assert!(blob.stats().compressed_bytes < 256 + 8 + 8 + 130);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(HuffmanBlob::compress(&[]), Err(CodecError::EmptyInput));
        assert_eq!(
            ChunkedHuffman::compress(&[], 64),
            Err(CodecError::EmptyInput)
        );
    }

    #[test]
    fn roundtrip_skewed() {
        let data = skewed_data(50_000);
        let blob = HuffmanBlob::compress(&data).unwrap();
        assert_eq!(blob.decompress().unwrap(), data);
        // Entropy of the skewed stream is well under 8 bits.
        assert!(blob.stats().ratio() > 1.5, "ratio {}", blob.stats().ratio());
    }

    #[test]
    fn roundtrip_uniform_random() {
        let mut state = 1u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let blob = HuffmanBlob::compress(&data).unwrap();
        assert_eq!(blob.decompress().unwrap(), data);
    }

    #[test]
    fn all_256_symbols_roundtrip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let blob = HuffmanBlob::compress(&data).unwrap();
        assert_eq!(blob.decompress().unwrap(), data);
    }

    #[test]
    fn length_limit_respected_under_extreme_skew() {
        // Exponentially decaying frequencies force deep unrestricted codes.
        let mut freqs = [0u64; 256];
        let mut f = 1u64 << 50;
        for slot in freqs.iter_mut().take(40) {
            *slot = f.max(1);
            f /= 3;
        }
        let t = HuffmanTable::from_frequencies(&freqs).unwrap();
        for s in 0..=255u8 {
            assert!(
                t.code_len(s) <= MAX_CODE_LEN,
                "symbol {s}: {}",
                t.code_len(s)
            );
        }
        // And the table still decodes a stream drawn from those symbols.
        let data: Vec<u8> = (0..1000).map(|i| (i % 40) as u8).collect();
        let blob = HuffmanBlob::compress(&data).unwrap();
        assert_eq!(blob.decompress().unwrap(), data);
    }

    #[test]
    fn kraft_equality_holds() {
        let data = skewed_data(20_000);
        let mut freqs = [0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let t = HuffmanTable::from_frequencies(&freqs).unwrap();
        let kraft: f64 = (0..=255u8)
            .filter(|&s| t.code_len(s) > 0)
            .map(|s| 2f64.powi(-(t.code_len(s) as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-9, "kraft {kraft}");
    }

    #[test]
    fn from_lengths_rejects_invalid() {
        let mut lengths = [0u8; 256];
        lengths[0] = 1;
        lengths[1] = 1;
        lengths[2] = 1; // over-complete
        assert!(matches!(
            HuffmanTable::from_lengths(lengths),
            Err(CodecError::Corrupt(_))
        ));
        assert!(matches!(
            HuffmanTable::from_lengths([0u8; 256]),
            Err(CodecError::EmptyInput)
        ));
        let mut too_long = [0u8; 256];
        too_long[0] = (MAX_CODE_LEN + 1) as u8;
        assert!(matches!(
            HuffmanTable::from_lengths(too_long),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn chunked_roundtrip_and_trace() {
        let data = skewed_data(30_000);
        let ch = ChunkedHuffman::compress(&data, 4096).unwrap();
        assert_eq!(ch.chunk_count(), 30_000_usize.div_ceil(4096));
        let (out, trace) = ch.decompress_traced().unwrap();
        assert_eq!(out, data);
        assert_eq!(trace.symbols, 30_000);
        assert_eq!(trace.chunks, ch.chunk_count());
        // Mean length below 8 bits (compressible) but above entropy floor.
        let mean = trace.mean_code_len();
        assert!(mean > 1.0 && mean < 8.0, "mean {mean}");
        // Divergence: variable lengths make warps wait; factor > 1.
        assert!(trace.warp_divergence_factor() > 1.1);
    }

    #[test]
    fn uniform_lengths_have_no_divergence() {
        // All symbols equally frequent at a power-of-two count => equal code
        // lengths => E[max]/mean == 1.
        let data: Vec<u8> = (0..=255u8).cycle().take(256 * 16).collect();
        let ch = ChunkedHuffman::compress(&data, 1024).unwrap();
        let (_, trace) = ch.decompress_traced().unwrap();
        assert!((trace.warp_divergence_factor() - 1.0).abs() < 1e-9);
        assert!(trace.chunk_imbalance() < 1e-9);
    }

    #[test]
    fn chunk_boundaries_are_byte_aligned() {
        let data = skewed_data(10_000);
        let ch = ChunkedHuffman::compress(&data, 1000).unwrap();
        // Every chunk decodes independently, so a frame with a single chunk
        // decoded alone must agree with the corresponding slice.
        let full = ch.decompress().unwrap();
        assert_eq!(&full[..1000], &data[..1000]);
        assert_eq!(&full[9000..], &data[9000..]);
    }

    #[test]
    fn lut_decoder_matches_bit_serial() {
        let data = skewed_data(40_000);
        let blob = HuffmanBlob::compress(&data).unwrap();
        assert_eq!(blob.decompress_fast().unwrap(), blob.decompress().unwrap());
        assert_eq!(blob.decompress_fast().unwrap(), data);
    }

    #[test]
    fn lut_decoder_handles_long_escape_codes() {
        // Force codes longer than LUT_BITS: an exponential frequency ladder
        // drives rare symbols past 12 bits, exercising the escape path.
        let mut data = Vec::new();
        for s in 0..30u32 {
            let count = 1usize << (30 - s).min(16);
            data.extend(std::iter::repeat_n(s as u8, count / 256 + 1));
        }
        // Shuffle deterministically.
        let mut state = 0xDEADBEEFu64;
        for i in (1..data.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            data.swap(i, j);
        }
        let blob = HuffmanBlob::compress(&data).unwrap();
        let mut freqs = [0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let table = HuffmanTable::from_frequencies(&freqs).unwrap();
        let max_len = (0..=255u8).map(|s| table.code_len(s)).max().unwrap();
        assert!(max_len > LUT_BITS, "need escape codes (max {max_len})");
        assert_eq!(blob.decompress_fast().unwrap(), data);
    }

    #[test]
    fn lut_decoder_detects_truncation() {
        let data = skewed_data(5_000);
        let mut blob = HuffmanBlob::compress(&data).unwrap();
        blob.payload.truncate(blob.payload.len() / 4);
        assert!(blob.decompress_fast().is_err());
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        // A flipped payload byte usually still decodes structurally (the
        // prefix code re-synchronizes) — the checksum is what catches it.
        let data = skewed_data(5_000);
        let mut blob = HuffmanBlob::compress(&data).unwrap();
        blob.payload[100] ^= 0x40;
        assert!(blob.decompress().is_err(), "corruption must not pass");
        assert!(blob.decompress_fast().is_err());
        // A wrong recorded checksum over an intact payload is the pure
        // mismatch case, on both decode paths.
        let mut tampered = HuffmanBlob::compress(&data).unwrap();
        tampered.checksum ^= 1;
        assert!(matches!(
            tampered.decompress(),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            tampered.decompress_fast(),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_chunk_fails_checksum() {
        let data = skewed_data(10_000);
        let mut ch = ChunkedHuffman::compress(&data, 1000).unwrap();
        let mid = ch.payload.len() / 2;
        ch.payload[mid] ^= 0x08;
        assert!(ch.decompress().is_err(), "corruption must not pass");
        let mut tampered = ChunkedHuffman::compress(&data, 1000).unwrap();
        tampered.checksum ^= 1;
        assert!(matches!(
            tampered.decompress_traced(),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn expected_bits_close_to_entropy() {
        let data = skewed_data(100_000);
        let mut freqs = [0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let t = HuffmanTable::from_frequencies(&freqs).unwrap();
        let total: u64 = freqs.iter().sum();
        let entropy: f64 = freqs
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        let bits = t.expected_bits(&freqs);
        assert!(bits >= entropy - 1e-9, "bits {bits} entropy {entropy}");
        assert!(bits <= entropy + 1.0, "Huffman within 1 bit of entropy");
    }
}

//! BF16 plane splitting: the transformation every lossless weight codec in
//! the paper applies before entropy coding.
//!
//! A BF16 weight has three fields; only the 8-bit exponent is statistically
//! redundant (§3.1). The baselines therefore split a weight stream into:
//!
//! * an **exponent plane** (one byte per weight) — entropy coded;
//! * a **sign/mantissa plane** (one packed byte per weight) — stored raw,
//!   since signs and mantissas of trained weights are near-uniform.
//!
//! [`recombine`] is the exact inverse of [`split_planes`].

use zipserv_bf16::Bf16;

/// The two byte planes of a BF16 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Planes {
    /// Raw exponent field per weight.
    pub exponents: Vec<u8>,
    /// Packed sign (bit 7) + mantissa (bits 0..7) per weight.
    pub sign_mantissa: Vec<u8>,
}

impl Planes {
    /// Number of weights represented.
    pub fn len(&self) -> usize {
        self.exponents.len()
    }

    /// Is the stream empty?
    pub fn is_empty(&self) -> bool {
        self.exponents.is_empty()
    }
}

/// Splits a BF16 stream into its exponent and sign/mantissa planes.
///
/// # Example
///
/// ```
/// use zipserv_bf16::Bf16;
/// use zipserv_entropy::split::{split_planes, recombine};
///
/// let weights = vec![Bf16::from_f32(1.5), Bf16::from_f32(-0.125)];
/// let planes = split_planes(&weights);
/// assert_eq!(recombine(&planes), weights);
/// ```
pub fn split_planes(weights: &[Bf16]) -> Planes {
    let mut exponents = Vec::with_capacity(weights.len());
    let mut sign_mantissa = Vec::with_capacity(weights.len());
    for &w in weights {
        exponents.push(w.exponent());
        sign_mantissa.push(w.packed_sign_mantissa());
    }
    Planes {
        exponents,
        sign_mantissa,
    }
}

/// Reassembles the original BF16 stream from its planes.
///
/// # Panics
///
/// Panics if the two planes have different lengths.
pub fn recombine(planes: &Planes) -> Vec<Bf16> {
    assert_eq!(
        planes.exponents.len(),
        planes.sign_mantissa.len(),
        "plane length mismatch"
    );
    planes
        .exponents
        .iter()
        .zip(planes.sign_mantissa.iter())
        .map(|(&e, &sm)| Bf16::from_packed(sm, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_bit_patterns() {
        let weights: Vec<Bf16> = (0..=u16::MAX).map(Bf16::from_bits).collect();
        let planes = split_planes(&weights);
        assert_eq!(planes.len(), weights.len());
        assert_eq!(recombine(&planes), weights);
    }

    #[test]
    fn empty_roundtrip() {
        let planes = split_planes(&[]);
        assert!(planes.is_empty());
        assert!(recombine(&planes).is_empty());
    }

    #[test]
    fn planes_extract_correct_fields() {
        let w = Bf16::from_f32(-2.5); // sign 1, exponent 128, mantissa 0x20
        let planes = split_planes(&[w]);
        assert_eq!(planes.exponents, vec![128]);
        assert_eq!(planes.sign_mantissa, vec![0x80 | 0x20]);
    }

    #[test]
    #[should_panic(expected = "plane length mismatch")]
    fn mismatched_planes_panic() {
        let planes = Planes {
            exponents: vec![1, 2],
            sign_mantissa: vec![3],
        };
        let _ = recombine(&planes);
    }
}

//! Kernel explorer: compare the fused ZipGEMM against cuBLAS_TC and the
//! decoupled DietGPU/nvCOMP/DFloat11 pipelines on any layer shape and GPU —
//! an interactive version of Figures 11/14/15.
//!
//! ```text
//! cargo run --release --example kernel_explorer -- 28672 4096 32
//! ```

use zipserv::gpu::device::Gpu;
use zipserv::gpu::roofline::{compute_intensity, GemmShape, PipelineKind};
use zipserv::kernels::cublas_model::CublasTc;
use zipserv::kernels::decoupled::{BaselineCodec, DecoupledPipeline};
use zipserv::kernels::fused::{typical_stats, FusedZipGemm};

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (m, k, n) = match args.as_slice() {
        [m, k, n, ..] => (*m, *k, *n),
        _ => (28672, 4096, 32), // the paper's micro-analysis shape
    };
    let shape = GemmShape::new(m, k, n);
    let stats = typical_stats(m, k);

    println!(
        "GEMM {m}x{k} @ N={n}  ({:.1} MB of BF16 weights)",
        (2 * m * k) as f64 / 1e6
    );
    println!(
        "compute intensity: dense {:.1}, decoupled {:.1}, fused {:.1} flops/byte\n",
        compute_intensity(shape, PipelineKind::DenseGemm, 1.51),
        compute_intensity(shape, PipelineKind::Decoupled, 1.51),
        compute_intensity(shape, PipelineKind::ZipServFused, 1.51),
    );

    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>12} {:>12} {:>12}",
        "GPU", "cuBLAS(us)", "ZipGEMM(us)", "speedup", "DietGPU", "nvCOMP", "DFloat11"
    );
    for gpu in Gpu::ALL {
        let spec = gpu.spec();
        let dense = CublasTc::time(shape, &spec).total_us;
        let fused = FusedZipGemm::time(&stats, n, &spec).total_us;
        let base: Vec<f64> = BaselineCodec::ALL
            .iter()
            .map(|&c| dense / DecoupledPipeline::new(c).time(shape, &spec).total_us())
            .collect();
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>8.2}x {:>11.2}x {:>11.2}x {:>11.2}x",
            gpu.name(),
            dense,
            fused,
            dense / fused,
            base[0],
            base[1],
            base[2]
        );
    }
    println!("\n(speedups are relative to cuBLAS_TC on the same device; >1 is faster)");
}

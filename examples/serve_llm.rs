//! End-to-end serving demo: deploy LLaMA3.1-8B on an RTX4090 under all four
//! engines and serve the paper's workload sweep (Figure 16), printing
//! latency, throughput and the decode-step breakdown (Figure 17).
//!
//! ```text
//! cargo run --release --example serve_llm
//! ```

use zipserv::prelude::*;
use zipserv::serve::cluster::GpuCluster;
use zipserv::serve::engine::{EngineKind, ServingEngine};
use zipserv::serve::workload::Workload;

fn main() {
    let model = LlmModel::Llama31_8b;
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    println!("serving {} on 1x{}\n", model.name(), cluster.gpu.name());

    // Figure 17: the decode-step anatomy at batch 32, context 1024.
    for kind in [EngineKind::Vllm, EngineKind::ZipServ] {
        let engine = ServingEngine::new(kind, model, cluster);
        let step = engine.decode_step(32, 1024);
        let plan = engine.memory_plan();
        println!(
            "{:<12} step {:>6.2} ms (linear {:.2}, attention {:.2}, other {:.2}) | \
             weights {:.2} GiB, KV {:.2} GiB",
            kind.name(),
            step.total_ms(),
            step.linear_ms,
            step.attention_ms,
            step.other_ms,
            plan.weight_bytes as f64 / (1u64 << 30) as f64,
            plan.kv_bytes as f64 / (1u64 << 30) as f64,
        );
    }

    // Figure 16: the workload sweep.
    println!(
        "\n{:<6} {:>5} | {:>16} {:>16} {:>16} {:>16}",
        "batch", "out", "ZipServ", "vLLM", "Transformers", "DFloat11"
    );
    for w in Workload::paper_sweep() {
        print!("{:<6} {:>5} |", w.batch, w.output_len);
        for kind in EngineKind::ALL {
            let r = ServingEngine::new(kind, model, cluster).serve(w);
            print!(" {:>7.1}s {:>6.0}t/s", r.latency_s, r.throughput_tps);
        }
        println!();
    }

    // Headline numbers.
    let w = Workload::new(32, 512, 2048);
    let zip = ServingEngine::new(EngineKind::ZipServ, model, cluster).serve(w);
    let vllm = ServingEngine::new(EngineKind::Vllm, model, cluster).serve(w);
    println!(
        "\nbatch 32, 2048 output tokens: {:.0} tok/s vs vLLM {:.0} tok/s = {:.2}x \
         (paper: 1105 tok/s, 1.66x)",
        zip.throughput_tps,
        vllm.throughput_tps,
        zip.throughput_tps / vllm.throughput_tps
    );

    // The other two §6.5 deployments are tensor-parallel; the builder's
    // `tp`/`pp` axes shard weights and KV per rank and charge the ring
    // all-reduce (plus pipeline hops, if any) in every step.
    println!("\nmulti-GPU deployments (ZipServ, batch 32 @ seq 1024):");
    let deployments = [
        (LlmModel::Mistral24b, 2u32, 1u32),
        (LlmModel::Llama31_70b, 4, 1),
        (LlmModel::Llama31_70b, 4, 2),
    ];
    for (model, tp, pp) in deployments {
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(model)
            .cluster(GpuCluster::single(Gpu::L40s))
            .tp(tp)
            .pp(pp)
            .build();
        let step = engine.decode_step(32, 1024);
        println!(
            "{:<14} on {}x{} (TP{tp} PP{pp}): step {:>6.2} ms, comm {:>5.2} ms \
             ({:.0}% all-reduce + hops), KV capacity {} tokens",
            model.name(),
            engine.cluster().total_devices(),
            engine.cluster().gpu.name(),
            step.total_ms(),
            step.comm_ms(),
            100.0 * step.comm_ms() / step.total_ms(),
            engine.kv_capacity_tokens(),
        );
    }
}

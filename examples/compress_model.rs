//! Offline model compression: run the TCA-TBE compressor over every linear
//! layer of a (synthetic) LLaMA3.1-8B-shaped model shard and report the
//! §6.4 / §6.5 numbers: per-layer ratios, whole-model footprint, and
//! compressor throughput.
//!
//! ```text
//! cargo run --release --example compress_model
//! ```

use std::time::Instant;
use zipserv::prelude::*;
use zipserv::tbe::TbeCompressor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = LlmModel::Llama31_8b;
    let dims = model.dims();
    println!(
        "model: {} (hidden {}, {} layers)",
        model.name(),
        dims.hidden,
        dims.layers
    );

    // Compress one representative shard of each layer kind. Shapes are the
    // real ones; we sample a 1/16 row slice to keep the demo quick and
    // extrapolate (the format is row-separable, so ratios are unchanged).
    let gen = WeightGen::for_family(model.family()).seed(8);
    let compressor = TbeCompressor::new();
    let mut total_raw = 0u64;
    let mut total_compressed = 0u64;
    let mut total_elems = 0u64;
    let start = Instant::now();
    for layer in LayerKind::ALL {
        let (m, k) = layer.weight_dims(&dims);
        let sample_rows = (m / 16).max(64) as usize;
        let w = gen.matrix(sample_rows, k as usize);
        let tbe = compressor.compress(&w)?;
        let s = tbe.stats();
        println!(
            "  {:<12} {:>6}x{:<6} -> {:>5.1}% of raw ({:.2} bits/elem, {:.1}% covered)",
            layer.name(),
            m,
            k,
            s.size_percent(),
            s.bits_per_element(),
            100.0 * s.coverage(),
        );
        let scale = m as f64 / sample_rows as f64;
        total_raw += (s.raw_bytes as f64 * scale) as u64;
        total_compressed += (s.compressed_bytes() as f64 * scale) as u64;
        total_elems += (w.len() as f64 * scale) as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let sampled_elems = total_elems / 16;

    println!(
        "\nper-block linear weights: {:.2} GB -> {:.2} GB ({:.1}%)",
        total_raw as f64 * dims.layers as f64 / 16.0 / 1e9, // heuristic: block layers dominate
        total_compressed as f64 * dims.layers as f64 / 16.0 / 1e9,
        100.0 * total_compressed as f64 / total_raw as f64,
    );
    let meps = sampled_elems as f64 / elapsed / 1e6;
    println!(
        "compressor throughput: {meps:.0} Melem/s -> full 8B model in ~{:.1} min \
         (paper: ~2.5 min on 16 cores)",
        dims.total_params() as f64 / (meps * 1e6) / 60.0
    );
    Ok(())
}

//! Quickstart: compress a weight matrix losslessly, verify bit-exactness,
//! and run the fused ZipGEMM on the compressed form.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use zipserv::prelude::*;
use zipserv::tbe::ZipGemm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a Gaussian BF16 weight matrix (the paper's Appendix-A
    //    model of LLM weights) and inspect its exponent statistics.
    let weights = WeightGen::for_family(ModelFamily::Llama3)
        .seed(42)
        .matrix(512, 512);
    let hist = ExponentHistogram::from_matrix(&weights);
    let summary = ExponentSummary::from_histogram(&hist);
    println!("exponent entropy : {:.2} bits (of 8 allocated)", summary.entropy_bits);
    println!("top-7 coverage   : {:.1}%", 100.0 * summary.top7_coverage);
    println!("top-7 contiguous : {}", summary.top7_contiguous);

    // 2. Compress with TCA-TBE (Algorithm 1).
    let compressed = TbeCompressor::new().compress(&weights)?;
    let stats = compressed.stats();
    println!(
        "compressed       : {} -> {} bytes ({:.1}% of raw, {:.2} bits/elem)",
        stats.raw_bytes,
        stats.compressed_bytes(),
        stats.size_percent(),
        stats.bits_per_element()
    );

    // 3. Lossless: decompression is bit-exact.
    let restored = compressed.decompress();
    assert_eq!(restored, weights);
    println!("round-trip       : bit-exact");

    // 4. Fused ZipGEMM: compute Y = W X straight from the compressed form.
    let x = WeightGen::new(0.5).seed(7).matrix(512, 8);
    let y = ZipGemm::new().multiply(&compressed, &x);
    println!(
        "fused GEMM       : Y is {}x{}, Y[0,0] = {:.4}",
        y.rows(),
        y.cols(),
        y[(0, 0)]
    );

    // 5. And it matches the dense reference bitwise.
    let dense = zipserv::kernels::gemm_ref::gemm(&weights, &x);
    assert_eq!(y.as_slice(), dense.as_slice());
    println!("fused == dense   : bitwise identical");

    // 6. Every functional path agrees bit for bit: the blocked hot path
    //    above, the naive reference loop, and the multi-threaded kernel
    //    (same micro-kernel, row strips across workers).
    let kernel = ZipGemm::new();
    assert_eq!(y.as_slice(), kernel.multiply_reference(&compressed, &x).as_slice());
    assert_eq!(y.as_slice(), kernel.multiply_parallel(&compressed, &x, 4).as_slice());
    println!("blocked == naive == parallel : bitwise identical");
    Ok(())
}

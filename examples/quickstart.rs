//! Quickstart: compress a weight matrix losslessly, run the fused ZipGEMM
//! on the compressed form, then deploy a serving engine with the fluent
//! [`EngineBuilder`] and race two scheduling policies on the same traffic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use zipserv::prelude::*;
use zipserv::tbe::ZipGemm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize a Gaussian BF16 weight matrix (the paper's Appendix-A
    //    model of LLM weights) and inspect its exponent statistics.
    let weights = WeightGen::for_family(ModelFamily::Llama3)
        .seed(42)
        .matrix(512, 512);
    let hist = ExponentHistogram::from_matrix(&weights);
    let summary = ExponentSummary::from_histogram(&hist);
    println!(
        "exponent entropy : {:.2} bits (of 8 allocated)",
        summary.entropy_bits
    );
    println!("top-7 coverage   : {:.1}%", 100.0 * summary.top7_coverage);

    // 2. Compress with TCA-TBE (Algorithm 1) — lossless, bit-exact.
    let compressed = TbeCompressor::new().compress(&weights)?;
    let stats = compressed.stats();
    println!(
        "compressed       : {} -> {} bytes ({:.1}% of raw, {:.2} bits/elem)",
        stats.raw_bytes,
        stats.compressed_bytes(),
        stats.size_percent(),
        stats.bits_per_element()
    );
    assert_eq!(compressed.decompress(), weights);
    println!("round-trip       : bit-exact");

    // 3. Fused ZipGEMM: compute Y = W X straight from the compressed form,
    //    and every functional path (blocked, naive, parallel) agrees bitwise.
    let x = WeightGen::new(0.5).seed(7).matrix(512, 8);
    let kernel = ZipGemm::new();
    let y = kernel.multiply(&compressed, &x);
    let dense = zipserv::kernels::gemm_ref::gemm(&weights, &x);
    assert_eq!(y.as_slice(), dense.as_slice());
    assert_eq!(
        y.as_slice(),
        kernel.multiply_reference(&compressed, &x).as_slice()
    );
    assert_eq!(
        y.as_slice(),
        kernel.multiply_parallel(&compressed, &x, 4).as_slice()
    );
    println!("fused == dense == naive == parallel : bitwise identical\n");

    // 4. Deploy a serving engine with the fluent builder: deployment axes
    //    (engine kind, model, cluster) plus the online scheduling policy
    //    and batch cap in one place.
    let fcfs_engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::Rtx4090))
        .policy(Fcfs)
        .build();
    println!(
        "deployed         : ZipServ / LLaMA3.1-8B / 1xRTX4090, KV capacity {} tokens",
        fcfs_engine.kv_capacity_tokens()
    );

    // 5. Two-policy comparison on the same mixed-priority trace: FCFS vs
    //    priority tiers with aging + preemption. The interactive class has
    //    a 2s TTFT / 100ms TPOT SLO (see ArrivalMix::paper_mix).
    let arrivals = ArrivalMix::paper_mix().generate(10.0, 120, 29);
    let priority_engine = ServingEngine::builder().policy(Priority::default()).build();
    println!(
        "\n{:>10} {:>8} {:>14} {:>10} {:>9}",
        "policy", "tok/s", "p99 TTFT int", "SLO att.", "preempts"
    );
    for (engine, report) in [
        (&fcfs_engine, fcfs_engine.serve_online(arrivals.clone())),
        (&priority_engine, priority_engine.serve_online(arrivals)),
    ] {
        println!(
            "{:>10} {:>8.0} {:>13.2}s {:>9.1}% {:>9}",
            engine.policy().name(),
            report.throughput_tps,
            report
                .class_ttft_percentile(PriorityClass::Interactive, 0.99)
                .expect("interactive completions"),
            100.0 * report.slo_attainment().expect("SLO-carrying completions"),
            report.preemptions,
        );
    }
    println!("\nSame hardware, same traffic: the policy is the only axis that moved.");
    Ok(())
}

//! Bit-exact end-to-end inference: build a miniature transformer, compress
//! every linear layer with TCA-TBE, and show that greedy generation is
//! token-for-token identical — then ship the compressed model through the
//! `.ztbe` archive and generate again from the loaded copy.
//!
//! ```text
//! cargo run --release --example tiny_llm
//! ```

use zipserv::serve::transformer::{TinyConfig, TinyLlm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TinyConfig::small();
    println!(
        "model: {} layers, hidden {}, {} heads, vocab {}",
        config.layers, config.hidden, config.heads, config.vocab
    );

    // Dense reference model.
    let dense = TinyLlm::random(config, 0xCAFE);
    let prompt = [17u32, 4, 99];
    let dense_out = dense.generate(&prompt, 16);
    println!("dense generation     : {dense_out:?}");

    // Compress every linear layer (Algorithm 1 per layer).
    let mut compressed = dense.clone();
    compressed.compress_weights()?;
    let comp_out = compressed.generate(&prompt, 16);
    println!("compressed generation: {comp_out:?}");
    assert_eq!(dense_out, comp_out);
    println!("=> token-for-token identical (bit-exact inference)\n");

    // Logit-level check: not one bit differs.
    let a = dense.forward(&prompt);
    let b = compressed.forward(&prompt);
    let diffs = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .filter(|(x, y)| x.to_bits() != y.to_bits())
        .count();
    println!("logit bits differing : {diffs} of {}", a.len());
    assert_eq!(diffs, 0);

    // Archive round-trip: serialize a compressed tensor and reload it.
    use zipserv::tbe::format::archive::ModelArchive;
    use zipserv::tbe::TbeCompressor;
    let w = zipserv::bf16::gen::WeightGen::new(0.02)
        .seed(1)
        .matrix(64, 64);
    let mut archive = ModelArchive::new();
    archive.insert("demo.layer", TbeCompressor::new().compress(&w)?);
    let bytes = archive.to_bytes();
    let loaded = ModelArchive::from_bytes(&bytes)?;
    assert_eq!(loaded.get("demo.layer").expect("present").decompress(), w);
    println!(
        "archive round-trip   : {} bytes on disk for {} raw ({}% )",
        bytes.len(),
        archive.raw_bytes(),
        100 * archive.compressed_bytes() / archive.raw_bytes()
    );
    Ok(())
}

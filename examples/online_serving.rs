//! Online serving demo: continuous batching under Poisson load, comparing
//! ZipServ and the vLLM baseline at increasing request rates — the
//! production-serving view of the paper's KV-capacity mechanism. Engines
//! come from the fluent [`EngineBuilder`]; swap `.policy(...)` to change
//! the admission discipline.
//!
//! ```text
//! cargo run --release --example online_serving
//! ```

use zipserv::prelude::*;

fn main() {
    println!("LLaMA3.1-8B on 1xRTX4090, prompt 1024, output 256, 60 requests\n");
    println!(
        "{:>10} {:>10} | {:>8} {:>9} {:>9} {:>7} | {:>8} {:>9} {:>9} {:>7}",
        "", "", "ZipServ", "", "", "", "vLLM", "", "", ""
    );
    println!(
        "{:>10} {:>10} | {:>8} {:>9} {:>9} {:>7} | {:>8} {:>9} {:>9} {:>7}",
        "rate", "", "tok/s", "p50 (s)", "p95 (s)", "batch", "tok/s", "p50 (s)", "p95 (s)", "batch"
    );
    for rate in [2.0f64, 4.0, 8.0, 16.0] {
        let arrivals = poisson_arrivals(rate, 60, 1024, 256, 7);
        print!("{:>7.0}/s {:>12}|", rate, "");
        for kind in [EngineKind::ZipServ, EngineKind::Vllm] {
            let engine = ServingEngine::builder()
                .kind(kind)
                .model(LlmModel::Llama31_8b)
                .cluster(GpuCluster::single(Gpu::Rtx4090))
                .policy(Fcfs)
                .build();
            let r = engine.serve_online(arrivals.clone());
            print!(
                " {:>8.0} {:>9.1} {:>9.1} {:>7} |",
                r.throughput_tps,
                r.latency_percentile(0.5).expect("completions"),
                r.latency_percentile(0.95).expect("completions"),
                r.peak_batch
            );
        }
        println!();
    }
    println!(
        "\nAt saturating load the compressed engine admits a larger concurrent batch\n\
         (more KV pages from the freed weight memory) and holds lower tail latency."
    );
}
